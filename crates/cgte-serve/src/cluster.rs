//! Sharded estimation: a fault-tolerant coordinator over `cgte-serve`.
//!
//! The coordinator fans a walk budget out as `walkers` independent
//! sessions across N shard servers, checkpoints them as `.cgtes`
//! snapshots, and merges the final observation logs into **one** stream
//! whose estimates are bit-exact against the single-box path
//! ([`single_box_reference`]). Three properties make that equivalence
//! hold under failures:
//!
//! 1. **Walkers, not shards, are the unit of determinism.** Walker `i`
//!    draws from its own seed ([`derive_walker_seed`]), so *where* it runs
//!    never matters — only that its batches arrive in order.
//! 2. **Snapshots sit on batch boundaries.** A restored walker re-issues
//!    the same batch sizes its uninterrupted twin would have, and the
//!    xoshiro state stored in the snapshot makes the redrawn samples
//!    identical.
//! 3. **Merging replays logs in walker order.** The merged stream is the
//!    same push sequence the reference produces locally.
//!
//! The transport is hardened: per-request connect/read timeouts, bounded
//! retries with exponential backoff and seeded jitter, a circuit breaker
//! that stops hammering a dead shard, and *resync-instead-of-retry* for
//! the non-idempotent ingest POST (after a transport error the
//! coordinator reads the session length back to learn whether the batch
//! was applied — a blind retry could double-ingest). A shard death
//! redistributes its walkers to survivors, restoring each from its last
//! snapshot; only when **no** shard survives does the run degrade, and
//! then the result says so ([`ClusterRun::degraded`] + coverage) instead
//! of hanging or silently answering from partial data.
//!
//! Within a round, the per-walker HTTP round trips fan out over a
//! [`ClusterConfig::round_threads`]-bounded worker pool, so a round's
//! wall-clock is the *slowest* walker trip rather than the sum of all of
//! them. Each worker owns one private [`RetryClient`] per shard; the
//! canonical per-shard breaker state stays with the coordinator thread,
//! crossing the pool boundary through a shared health table on dispatch
//! and through per-walker outcomes (folded back in walker-index order)
//! on completion — so placement decisions never depend on thread
//! scheduling. Dead shards are probed half-open at every checkpoint
//! boundary; a shard that answers again *rejoins*, and walkers migrate
//! back onto it toward an even walkers-per-shard spread (their next
//! placement restores the freshly-taken checkpoint there, which is why
//! rebalancing cannot disturb bit-exactness).

use crate::fault::mix64;
use crate::session::build_sampler;
use crate::{counters, http, ServeError};
use cgte_graph::{Graph, Partition};
use cgte_sampling::{snapshot, NodeSampler, ObservationContext, ObservationStream};
use cgte_scenarios::artifact::{parse_json, Json};
use crossbeam::channel;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::io::{BufReader, Write as _};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// A coordinator-fatal failure. Shard deaths are *not* errors — they end
/// in a degraded [`ClusterRun`]; this type is for misconfiguration and
/// protocol violations (a 4xx from a shard means the spec itself is bad).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// Bad coordinator configuration (no shards, zero budget, …).
    Config(String),
    /// A shard answered in a way retries cannot fix.
    Shard(String),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Config(m) => write!(f, "cluster config error: {m}"),
            ClusterError::Shard(m) => write!(f, "shard error: {m}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<ServeError> for ClusterError {
    fn from(e: ServeError) -> Self {
        ClusterError::Config(e.msg)
    }
}

// ---------------------------------------------------------------------------
// Hardened transport.

/// Retry/timeout policy of the coordinator's shard client.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// TCP connect timeout per attempt.
    pub connect_timeout: Duration,
    /// Read/write timeout per attempt (catches slow-loris stalls).
    pub request_timeout: Duration,
    /// Retries after the first attempt (idempotent requests only).
    pub max_retries: u32,
    /// First backoff delay; doubles per retry.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// Consecutive failed *requests* (post-retry) that open the circuit.
    pub breaker_threshold: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            connect_timeout: Duration::from_millis(1000),
            request_timeout: Duration::from_millis(5000),
            max_retries: 3,
            backoff_base: Duration::from_millis(50),
            backoff_max: Duration::from_millis(2000),
            breaker_threshold: 2,
        }
    }
}

/// A transport-level client failure.
#[derive(Debug, Clone)]
pub enum ClientError {
    /// Connect/read/write failed (refused, reset, timeout, mid-body EOF).
    Transport(String),
    /// The server answered 5xx on every attempt.
    Http(u16, String),
    /// The circuit is open: the shard is considered dead.
    CircuitOpen,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Transport(m) => write!(f, "transport: {m}"),
            ClientError::Http(s, m) => write!(f, "http {s}: {m}"),
            ClientError::CircuitOpen => write!(f, "circuit open"),
        }
    }
}

/// One shard's hardened HTTP client: fresh connection per request (the
/// state of a connection that just saw a fault is unknowable), timeouts
/// on every socket operation, bounded retries with seeded-jitter
/// exponential backoff, and a circuit breaker.
pub struct RetryClient {
    addr: String,
    policy: RetryPolicy,
    jitter: StdRng,
    consecutive_failures: u32,
    open: bool,
    /// Retries this client spent — summed per run, unlike the
    /// process-global `counters::RETRIES_TOTAL` kept for `/metrics`.
    run_retries: u64,
    /// Suppresses breaker_open/breaker_reset events: worker-pool clients
    /// are local mirrors, only the coordinator logs canonical transitions.
    quiet: bool,
}

impl RetryClient {
    /// A client for `addr` (`host:port`). `jitter_seed` makes backoff
    /// delays — and therefore fault-injection test timelines —
    /// reproducible.
    pub fn new(addr: impl Into<String>, policy: RetryPolicy, jitter_seed: u64) -> RetryClient {
        RetryClient {
            addr: addr.into(),
            policy,
            jitter: StdRng::seed_from_u64(jitter_seed),
            consecutive_failures: 0,
            open: false,
            run_retries: 0,
            quiet: false,
        }
    }

    /// Silences this client's breaker transition events. Worker-pool
    /// clients are quiet: their breakers only mirror the coordinator's
    /// canonical per-shard state, and double-logging every mirror flip
    /// would drown the real transitions.
    pub fn quiet(mut self) -> RetryClient {
        self.quiet = true;
        self
    }

    /// The shard address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Whether the circuit breaker has declared the shard dead.
    pub fn is_open(&self) -> bool {
        self.open
    }

    /// Retries this client performed so far (its contribution to
    /// [`ClusterRun::retries`]).
    pub fn retries_spent(&self) -> u64 {
        self.run_retries
    }

    /// Forces the circuit open (the coordinator calls this when a
    /// non-retryable interaction proves the shard gone).
    pub fn trip(&mut self) {
        if !self.open {
            self.open = true;
            if !self.quiet {
                cgte_obs::event(
                    cgte_obs::LEVEL_DETAIL,
                    "cluster.breaker_open",
                    &[("addr", cgte_obs::Value::Str(&self.addr))],
                );
            }
        }
    }

    /// Closes the circuit (e.g. after a successful half-open probe).
    pub fn reset(&mut self) {
        if self.open && !self.quiet {
            cgte_obs::event(
                cgte_obs::LEVEL_DETAIL,
                "cluster.breaker_reset",
                &[("addr", cgte_obs::Value::Str(&self.addr))],
            );
        }
        self.open = false;
        self.consecutive_failures = 0;
    }

    /// Half-open liveness probe: one `/healthz` GET that bypasses the
    /// open-circuit check. Only a `200` closes the breaker; any failure
    /// (re-)trips it, so a dead shard stays quarantined — probing must
    /// never leak a closed breaker for a shard that did not answer.
    pub fn probe(&mut self) -> bool {
        match self.once("GET", "/healthz", b"") {
            Ok(resp) if resp.status == 200 => {
                self.reset();
                true
            }
            _ => {
                self.trip();
                false
            }
        }
    }

    /// `GET` with retries (idempotent by definition).
    pub fn get(&mut self, path: &str) -> Result<(u16, Vec<u8>), ClientError> {
        self.request("GET", path, b"", true)
    }

    /// `POST` with retries — only for requests where a duplicate apply is
    /// harmless (open/restore create orphan sessions at worst; snapshot
    /// save overwrites with identical bytes).
    pub fn post(&mut self, path: &str, body: &[u8]) -> Result<(u16, Vec<u8>), ClientError> {
        self.request("POST", path, body, true)
    }

    /// `POST` without retries, for non-idempotent requests (ingest). The
    /// caller must resync on [`ClientError::Transport`] instead of
    /// re-sending blindly.
    pub fn post_no_retry(
        &mut self,
        path: &str,
        body: &[u8],
    ) -> Result<(u16, Vec<u8>), ClientError> {
        self.request("POST", path, body, false)
    }

    /// `DELETE` with retries (idempotent: a repeat is a harmless 404).
    pub fn delete(&mut self, path: &str) -> Result<(u16, Vec<u8>), ClientError> {
        self.request("DELETE", path, b"", true)
    }

    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
        retry: bool,
    ) -> Result<(u16, Vec<u8>), ClientError> {
        if self.open {
            return Err(ClientError::CircuitOpen);
        }
        let attempts = if retry {
            self.policy.max_retries + 1
        } else {
            1
        };
        let mut last = ClientError::Transport("no attempt made".to_string());
        for attempt in 0..attempts {
            if attempt > 0 {
                self.backoff(attempt);
            }
            match self.once(method, path, body) {
                Ok(resp) if resp.status >= 500 => {
                    last = ClientError::Http(
                        resp.status,
                        String::from_utf8_lossy(&resp.body).into_owned(),
                    );
                }
                Ok(resp) => {
                    self.consecutive_failures = 0;
                    return Ok((resp.status, resp.body));
                }
                Err(e) => last = ClientError::Transport(e.to_string()),
            }
        }
        self.consecutive_failures += 1;
        if self.consecutive_failures >= self.policy.breaker_threshold {
            self.trip();
        }
        Err(last)
    }

    /// Exponential backoff with jitter: `base·2^(attempt-1)` capped at
    /// `backoff_max`, then scaled into `[½, 1]` by the seeded RNG so
    /// concurrent retries don't synchronize.
    fn backoff(&mut self, attempt: u32) {
        let exp = self
            .policy
            .backoff_base
            .saturating_mul(1u32 << (attempt - 1).min(16))
            .min(self.policy.backoff_max);
        let micros = exp.as_micros() as u64;
        let jittered = micros / 2 + self.jitter.next_u64() % (micros / 2 + 1);
        self.run_retries += 1;
        counters::RETRIES_TOTAL.fetch_add(1, Ordering::Relaxed);
        counters::BACKOFF_MICROS_TOTAL.fetch_add(jittered, Ordering::Relaxed);
        cgte_obs::event(
            cgte_obs::LEVEL_DETAIL,
            "cluster.retry",
            &[
                ("addr", cgte_obs::Value::Str(&self.addr)),
                ("attempt", cgte_obs::Value::U64(attempt as u64)),
                ("delay_us", cgte_obs::Value::U64(jittered)),
            ],
        );
        std::thread::sleep(Duration::from_micros(jittered));
    }

    fn once(&self, method: &str, path: &str, body: &[u8]) -> std::io::Result<http::ParsedResponse> {
        let addr = self
            .addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::other(format!("cannot resolve {:?}", self.addr)))?;
        let stream = TcpStream::connect_timeout(&addr, self.policy.connect_timeout)?;
        stream.set_read_timeout(Some(self.policy.request_timeout))?;
        stream.set_write_timeout(Some(self.policy.request_timeout))?;
        let _ = stream.set_nodelay(true);
        let mut writer = stream.try_clone()?;
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: shard\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        );
        let mut out = Vec::with_capacity(head.len() + body.len());
        out.extend_from_slice(head.as_bytes());
        out.extend_from_slice(body);
        writer.write_all(&out)?;
        writer.flush()?;
        http::read_response(&mut BufReader::new(stream))
    }
}

// ---------------------------------------------------------------------------
// Coordinator.

/// The deterministic per-walker seed: walker `i`'s draws depend only on
/// `(cluster seed, i)`, never on shard placement or failure history. The
/// coordinator and [`single_box_reference`] must agree on this function —
/// it *is* the bit-exactness contract.
///
/// Masked to 53 bits: the seed travels to shards as a JSON number, and
/// only integers up to 2⁵³ survive the `f64` round trip exactly. A wider
/// seed would be silently rounded server-side and every walk would
/// diverge from the local reference.
pub fn derive_walker_seed(seed: u64, walker: usize) -> u64 {
    mix64(seed ^ mix64(walker as u64 + 1)) & ((1u64 << 53) - 1)
}

/// A sharded run's parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Registry name of the graph (must exist in every shard's store and
    /// in the coordinator's local store for merging).
    pub graph: String,
    /// Partition name (default: the graph's first).
    pub partition: Option<String>,
    /// Sampler key: `uis`, `rw`, `mhrw`, `swrw`.
    pub sampler: String,
    /// `uniform`/`weighted` (default: the sampler's natural design).
    pub design: Option<String>,
    /// Cluster seed; walker `i` runs on [`derive_walker_seed`]`(seed, i)`.
    pub seed: u64,
    /// Walk burn-in per ingest batch.
    pub burn_in: usize,
    /// Walk thinning factor.
    pub thinning: usize,
    /// Independent walkers to fan out.
    pub walkers: usize,
    /// Retained samples each walker must produce.
    pub steps_per_walker: usize,
    /// Samples per ingest round (the checkpoint granularity).
    pub batch: usize,
    /// Checkpoint every this many rounds (0 = only the final state).
    pub snapshot_every: usize,
    /// Worker threads driving a round's per-walker HTTP trips. `1` keeps
    /// the trips fully sequential; any value yields the same merged
    /// stream bit-for-bit (placement and merging stay on the
    /// coordinator thread, in walker order).
    pub round_threads: usize,
    /// Transport policy for every shard client.
    pub policy: RetryPolicy,
    /// Seed of the backoff-jitter RNGs.
    pub jitter_seed: u64,
}

impl ClusterConfig {
    /// A config with the service defaults for `graph`.
    pub fn new(graph: impl Into<String>) -> ClusterConfig {
        ClusterConfig {
            graph: graph.into(),
            partition: None,
            sampler: "rw".to_string(),
            design: None,
            seed: 42,
            burn_in: 0,
            thinning: 1,
            walkers: 4,
            steps_per_walker: 1000,
            batch: 250,
            snapshot_every: 1,
            round_threads: 1,
            policy: RetryPolicy::default(),
            jitter_seed: 0,
        }
    }
}

/// Coordinator progress events, delivered to the hook passed to
/// [`run_cluster_with`]. Integration tests use `RoundDone` to kill a
/// shard process at an exact, reproducible point in the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterEvent {
    /// All live walkers finished round `round` (0-based).
    RoundDone {
        /// The completed round.
        round: usize,
    },
    /// A shard's circuit opened; its walkers will be redistributed.
    ShardDead {
        /// Index into the shard list.
        shard: usize,
    },
    /// A walker was re-homed (restored from its last snapshot, or
    /// restarted from seed if it never checkpointed).
    WalkerMoved {
        /// Walker index.
        walker: usize,
        /// Previous shard.
        from: usize,
        /// New shard.
        to: usize,
    },
    /// A dead shard answered its half-open probe at a checkpoint
    /// boundary; walkers rebalance back onto it.
    ShardRejoined {
        /// Index into the shard list.
        shard: usize,
    },
}

/// The outcome of a sharded run.
#[derive(Debug)]
pub struct ClusterRun {
    /// The merged observation stream (completed walkers, walker order) —
    /// bit-exact vs [`single_box_reference`] when `degraded` is false.
    pub stream: ObservationStream,
    /// Walkers requested.
    pub walkers_total: usize,
    /// Walkers that delivered their full budget.
    pub walkers_completed: usize,
    /// True iff some walkers could not finish (all shards dead): the
    /// estimate covers only `coverage` of the requested budget.
    pub degraded: bool,
    /// Fraction of walkers whose budget is in the merged stream.
    pub coverage: f64,
    /// Shards still alive at the end.
    pub shards_alive: usize,
    /// Shards configured.
    pub shards_total: usize,
    /// Transport retries spent during *this* run, summed over its own
    /// clients — concurrent runs in one process do not bleed into each
    /// other (the process-global counter feeds `/metrics` only).
    pub retries: u64,
    /// Walker re-homings performed.
    pub reassignments: usize,
    /// Ingest rounds driven.
    pub rounds: usize,
}

/// One walker's coordinator-side state.
struct Walker {
    seed: u64,
    shard: usize,
    session: Option<String>,
    /// Committed retained samples in the *current* session.
    done: usize,
    /// Last checkpoint: (samples at checkpoint, `.cgtes` bytes).
    checkpoint: Option<(usize, Vec<u8>)>,
    complete: bool,
    failed: bool,
}

fn json_field(body: &[u8], key: &str) -> Option<Json> {
    let text = std::str::from_utf8(body).ok()?;
    parse_json(text).ok()?.get(key).cloned()
}

fn json_u64(body: &[u8], key: &str) -> Option<u64> {
    match json_field(body, key)? {
        Json::Num(x) if x >= 0.0 && x.fract() == 0.0 => Some(x as u64),
        _ => None,
    }
}

fn json_str(body: &[u8], key: &str) -> Option<String> {
    match json_field(body, key)? {
        Json::Str(s) => Some(s),
        _ => None,
    }
}

/// Runs the cluster with a no-op progress hook. See [`run_cluster_with`].
pub fn run_cluster(
    cfg: &ClusterConfig,
    shards: &[String],
    ctx: &ObservationContext<'_>,
) -> Result<ClusterRun, ClusterError> {
    run_cluster_with(cfg, shards, ctx, |_| {})
}

/// One walker's work order for a round, shipped to the worker pool. The
/// coordinator decides *what* happens (placement, shard, batch size,
/// checkpoint-or-not) before dispatch; workers only execute HTTP trips.
struct RoundTask {
    walker: usize,
    shard: usize,
    session: String,
    done: usize,
    batch: usize,
    /// True when this round sits on the snapshot cadence: download a
    /// checkpoint after the ingest (always done on budget completion).
    checkpoint_due: bool,
    /// `cluster.round` span id — TLS span context does not follow work
    /// onto pool threads, so the parent crosses explicitly.
    span_parent: u64,
}

/// What a [`RoundTask`] produced, folded back on the coordinator thread.
struct RoundOutcome {
    /// Committed session length after the ingest (None: no progress).
    new_len: Option<usize>,
    /// Downloaded `.cgtes` checkpoint at `new_len`, when one was due.
    checkpoint: Option<Vec<u8>>,
    /// The walker delivered its full budget (final checkpoint in hand).
    completed: bool,
    /// The shard failed at the transport level mid-task; the coordinator
    /// runs the canonical `shard_died` transition.
    shard_failed: bool,
}

impl RoundOutcome {
    fn failed() -> RoundOutcome {
        RoundOutcome {
            new_len: None,
            checkpoint: None,
            completed: false,
            shard_failed: true,
        }
    }
}

/// Drives a full sharded estimation run and merges the result.
///
/// `ctx` is the coordinator's *local* view of the same graph + partition
/// the shards serve (loaded from the shared `.cgteg` store); it is used
/// to replay the downloaded logs into the merged stream. `hook` receives
/// [`ClusterEvent`]s as they happen.
///
/// Per-walker HTTP trips of a round run on `cfg.round_threads` pool
/// workers; everything that decides placement or ordering — walker
/// state, canonical breakers, event emission, the merge — stays on this
/// thread, so the result is bit-identical at any thread count.
pub fn run_cluster_with(
    cfg: &ClusterConfig,
    shards: &[String],
    ctx: &ObservationContext<'_>,
    mut hook: impl FnMut(ClusterEvent),
) -> Result<ClusterRun, ClusterError> {
    if shards.is_empty() {
        return Err(ClusterError::Config("no shards given".to_string()));
    }
    if cfg.walkers == 0 || cfg.steps_per_walker == 0 || cfg.batch == 0 {
        return Err(ClusterError::Config(
            "walkers, steps_per_walker and batch must be positive".to_string(),
        ));
    }
    if cfg.round_threads == 0 {
        return Err(ClusterError::Config(
            "round_threads must be positive".to_string(),
        ));
    }
    let mut clients: Vec<RetryClient> = shards
        .iter()
        .enumerate()
        .map(|(i, a)| {
            RetryClient::new(
                a.clone(),
                cfg.policy.clone(),
                mix64(cfg.jitter_seed ^ (i as u64 + 0x5EED)),
            )
        })
        .collect();
    let mut walkers: Vec<Walker> = (0..cfg.walkers)
        .map(|i| Walker {
            seed: derive_walker_seed(cfg.seed, i),
            shard: i % shards.len(),
            session: None,
            done: 0,
            checkpoint: None,
            complete: false,
            failed: false,
        })
        .collect();
    let mut reassignments = 0usize;
    let mut rounds = 0usize;

    // Shared per-shard health table: true = the shard is considered dead.
    // Written by the coordinator on dispatch (canonical state) and by a
    // worker whose client just tripped, so sibling tasks already queued
    // against a corpse short-circuit instead of each burning the full
    // timeout budget.
    let pool_workers = cfg.round_threads.min(cfg.walkers);
    let shard_down: Vec<AtomicBool> = shards.iter().map(|_| AtomicBool::new(false)).collect();
    let pool_retries = AtomicU64::new(0);

    let mut loop_result: Result<(), ClusterError> = Ok(());
    crossbeam::scope(|scope| {
        let (task_tx, task_rx) = channel::unbounded::<RoundTask>();
        let (out_tx, out_rx) = channel::unbounded::<(usize, Result<RoundOutcome, ClusterError>)>();
        for worker in 0..pool_workers {
            let task_rx = task_rx.clone();
            let out_tx = out_tx.clone();
            let shard_down = &shard_down;
            let pool_retries = &pool_retries;
            scope.spawn(move |_| {
                round_worker(
                    cfg,
                    shards,
                    worker,
                    ctx,
                    shard_down,
                    task_rx,
                    out_tx,
                    pool_retries,
                )
            });
        }
        drop(task_rx);
        drop(out_tx);

        loop_result = (|| -> Result<(), ClusterError> {
            loop {
                let mut progressed = false;
                let mut round_span = cgte_obs::span(cgte_obs::LEVEL_COARSE, "cluster.round");
                round_span.field_u64("round", rounds as u64);
                let round_span_id = round_span.id();

                // Phase 1 (coordinator): place detached walkers. Runs on
                // the canonical clients so breaker decisions and
                // WalkerMoved events stay deterministic.
                for (i, w) in walkers.iter_mut().enumerate() {
                    if w.complete || w.failed || w.session.is_some() {
                        continue;
                    }
                    if !place_walker(cfg, &mut clients, w, i, &mut reassignments, &mut hook)? {
                        w.failed = true;
                    }
                }
                // Publish the canonical breaker state to the pool.
                for (s, c) in clients.iter().enumerate() {
                    shard_down[s].store(c.is_open(), Ordering::Release);
                }

                // Phase 2: fan this round's per-walker trips out.
                let boundary =
                    cfg.snapshot_every > 0 && (rounds + 1).is_multiple_of(cfg.snapshot_every);
                let mut in_flight = 0usize;
                for (i, w) in walkers.iter().enumerate() {
                    if w.complete || w.failed {
                        continue;
                    }
                    let Some(session) = w.session.clone() else {
                        continue;
                    };
                    task_tx
                        .send(RoundTask {
                            walker: i,
                            shard: w.shard,
                            session,
                            done: w.done,
                            batch: cfg.batch.min(cfg.steps_per_walker - w.done),
                            checkpoint_due: boundary,
                            span_parent: round_span_id,
                        })
                        .map_err(|_| {
                            ClusterError::Shard("round worker pool is gone".to_string())
                        })?;
                    in_flight += 1;
                }
                let mut outcomes = Vec::with_capacity(in_flight);
                for _ in 0..in_flight {
                    outcomes.push(out_rx.recv().map_err(|_| {
                        ClusterError::Shard("round worker pool died mid-round".to_string())
                    })?);
                }
                // Phase 3 (coordinator): fold outcomes back in walker
                // order — arrival order depends on thread scheduling,
                // state updates must not.
                outcomes.sort_by_key(|(i, _)| *i);
                for (i, outcome) in outcomes {
                    let o = outcome?;
                    let w = &mut walkers[i];
                    if let Some(len) = o.new_len {
                        w.done = len;
                        progressed = true;
                    }
                    if let Some(bytes) = o.checkpoint {
                        w.checkpoint = Some((w.done, bytes));
                    }
                    if o.completed {
                        w.complete = true;
                    } else if o.shard_failed {
                        shard_died(&mut clients, w, &mut hook);
                    }
                }

                // Phase 4: at checkpoint boundaries, probe dead shards
                // half-open; a shard that answers rejoins and walkers
                // rebalance back onto it. Bound to boundaries so every
                // migration restores a just-taken checkpoint.
                if boundary {
                    let mut rejoined = false;
                    for (s, c) in clients.iter_mut().enumerate() {
                        if c.is_open() && c.probe() {
                            rejoined = true;
                            cgte_obs::event(
                                cgte_obs::LEVEL_DETAIL,
                                "cluster.shard_rejoined",
                                &[("shard", cgte_obs::Value::U64(s as u64))],
                            );
                            hook(ClusterEvent::ShardRejoined { shard: s });
                        }
                    }
                    if rejoined {
                        rebalance(&mut clients, &mut walkers, &mut reassignments, &mut hook);
                    }
                }

                drop(round_span);
                hook(ClusterEvent::RoundDone { round: rounds });
                rounds += 1;
                if walkers.iter().all(|w| w.complete || w.failed) {
                    break;
                }
                // Deadlock guard: a fully-dead cluster fails the
                // remaining walkers (after one last half-open probe pass)
                // instead of spinning forever. `probe` keeps the breaker
                // open on failure, so no compensating trip is needed.
                if !progressed && clients.iter().all(RetryClient::is_open) {
                    let mut any_back = false;
                    for c in clients.iter_mut() {
                        if c.probe() {
                            any_back = true;
                        }
                    }
                    if !any_back {
                        for w in walkers.iter_mut() {
                            if !w.complete {
                                w.failed = true;
                            }
                        }
                        break;
                    }
                }
            }
            Ok(())
        })();
        drop(task_tx);
    })
    .map_err(|_| ClusterError::Shard("round worker panicked".to_string()))?;
    loop_result?;

    // Merge completed walkers' logs, in walker order, locally.
    let mut merged = ObservationStream::new(ctx.num_categories());
    let mut completed = 0usize;
    for (i, w) in walkers.iter().enumerate() {
        if !w.complete {
            continue;
        }
        let (_, bytes) = w.checkpoint.as_ref().expect("complete implies checkpoint");
        let container = snapshot::read_snapshot(&bytes[..])
            .map_err(|e| ClusterError::Shard(format!("walker {i} final snapshot: {e}")))?;
        let stream = snapshot::stream_from_container(&container, ctx)
            .map_err(|e| ClusterError::Shard(format!("walker {i} final snapshot: {e}")))?;
        if stream.len() != cfg.steps_per_walker {
            return Err(ClusterError::Shard(format!(
                "walker {i} delivered {} samples, expected {}",
                stream.len(),
                cfg.steps_per_walker
            )));
        }
        merged.merge(ctx, &stream);
        completed += 1;
    }
    let shards_alive = clients.iter().filter(|c| !c.is_open()).count();
    let retries = clients.iter().map(RetryClient::retries_spent).sum::<u64>()
        + pool_retries.load(Ordering::Relaxed);
    Ok(ClusterRun {
        stream: merged,
        walkers_total: cfg.walkers,
        walkers_completed: completed,
        degraded: completed < cfg.walkers,
        coverage: completed as f64 / cfg.walkers as f64,
        shards_alive,
        shards_total: shards.len(),
        retries,
        reassignments,
        rounds,
    })
}

/// A pool worker: owns one private (quiet) [`RetryClient`] per shard and
/// executes [`RoundTask`]s until the coordinator hangs up. On exit it
/// folds its clients' retry counts into the run total.
#[allow(clippy::too_many_arguments)]
fn round_worker(
    cfg: &ClusterConfig,
    shards: &[String],
    worker: usize,
    ctx: &ObservationContext<'_>,
    shard_down: &[AtomicBool],
    tasks: channel::Receiver<RoundTask>,
    out: channel::Sender<(usize, Result<RoundOutcome, ClusterError>)>,
    pool_retries: &AtomicU64,
) {
    let mut clients: Vec<RetryClient> = shards
        .iter()
        .enumerate()
        .map(|(s, a)| {
            RetryClient::new(
                a.clone(),
                cfg.policy.clone(),
                mix64(cfg.jitter_seed ^ mix64(((worker as u64) << 32) | (s as u64 + 0xB0B))),
            )
            .quiet()
        })
        .collect();
    while let Ok(task) = tasks.recv() {
        let result = run_round_task(cfg, &mut clients, shard_down, ctx, &task);
        if out.send((task.walker, result)).is_err() {
            break;
        }
    }
    let spent: u64 = clients.iter().map(RetryClient::retries_spent).sum();
    pool_retries.fetch_add(spent, Ordering::Relaxed);
}

/// Executes one walker's round trip: ingest, then (when due) checkpoint
/// download, then session delete on budget completion — the same
/// sequence the sequential coordinator issued, so the scripted
/// fault-gauntlet request indices are unchanged at `round_threads = 1`.
fn run_round_task(
    cfg: &ClusterConfig,
    clients: &mut [RetryClient],
    shard_down: &[AtomicBool],
    ctx: &ObservationContext<'_>,
    task: &RoundTask,
) -> Result<RoundOutcome, ClusterError> {
    // The canonical breaker opened since dispatch (a sibling task hit
    // the shard's corpse first): fail fast instead of re-proving it.
    if shard_down[task.shard].load(Ordering::Acquire) {
        return Ok(RoundOutcome::failed());
    }
    let client = &mut clients[task.shard];
    if client.is_open() {
        // The local mirror is stale — the coordinator holds this shard
        // live (it probed it back, or the mirror tripped on weather the
        // canonical client later disproved).
        client.reset();
    }
    let mut span =
        cgte_obs::span_with_parent(cgte_obs::LEVEL_DETAIL, "cluster.walker", task.span_parent);
    span.field_u64("walker", task.walker as u64);
    span.field_u64("shard", task.shard as u64);
    span.field_u64("batch", task.batch as u64);
    let Some(new_len) = ingest_batch(client, &task.session, task.batch, task.done)? else {
        shard_down[task.shard].store(true, Ordering::Release);
        return Ok(RoundOutcome::failed());
    };
    let completed = new_len >= cfg.steps_per_walker;
    if !completed && !task.checkpoint_due {
        return Ok(RoundOutcome {
            new_len: Some(new_len),
            checkpoint: None,
            completed: false,
            shard_failed: false,
        });
    }
    // Completion is only claimed once the full log is in hand: the final
    // state is always checkpointed, cadence or not.
    match fetch_checkpoint(client, &task.session, new_len, ctx)? {
        Some(bytes) => {
            if completed {
                let _ = client.delete(&format!("/sessions/{}", task.session));
            }
            Ok(RoundOutcome {
                new_len: Some(new_len),
                checkpoint: Some(bytes),
                completed,
                shard_failed: false,
            })
        }
        None => {
            shard_down[task.shard].store(true, Ordering::Release);
            Ok(RoundOutcome {
                new_len: Some(new_len),
                checkpoint: None,
                completed: false,
                shard_failed: true,
            })
        }
    }
}

/// Moves walkers from over- to under-loaded live shards until the spread
/// is even (difference ≤ 1), invoked when a shard rejoins. Only walkers
/// whose checkpoint matches their committed length are eligible — the
/// move is a detach; next round's placement restores that checkpoint on
/// the target shard, which replays the identical walk state and keeps
/// the merged stream bit-exact.
fn rebalance(
    clients: &mut [RetryClient],
    walkers: &mut [Walker],
    reassignments: &mut usize,
    hook: &mut impl FnMut(ClusterEvent),
) {
    loop {
        let live: Vec<usize> = (0..clients.len())
            .filter(|&s| !clients[s].is_open())
            .collect();
        if live.len() < 2 {
            return;
        }
        let mut counts = vec![0usize; clients.len()];
        for w in walkers.iter() {
            if !w.complete && !w.failed {
                counts[w.shard] += 1;
            }
        }
        // First max / first min: deterministic tie-breaks.
        let &max_s = live
            .iter()
            .max_by_key(|&&s| (counts[s], usize::MAX - s))
            .expect("live is non-empty");
        let &min_s = live
            .iter()
            .min_by_key(|&&s| (counts[s], s))
            .expect("live is non-empty");
        if counts[max_s] <= counts[min_s] + 1 {
            return;
        }
        let Some((idx, w)) = walkers.iter_mut().enumerate().find(|(_, w)| {
            !w.complete
                && !w.failed
                && w.shard == max_s
                && w.session.is_some()
                && w.checkpoint
                    .as_ref()
                    .map_or(w.done == 0, |(at, _)| *at == w.done)
        }) else {
            return;
        };
        if let Some(session) = w.session.take() {
            // Best-effort: the source shard is live, free its slot now
            // rather than waiting for TTL eviction.
            let _ = clients[max_s].delete(&format!("/sessions/{session}"));
        }
        let from = w.shard;
        w.shard = min_s;
        *reassignments += 1;
        cgte_obs::event(
            cgte_obs::LEVEL_DETAIL,
            "cluster.walker_moved",
            &[
                ("walker", cgte_obs::Value::U64(idx as u64)),
                ("from", cgte_obs::Value::U64(from as u64)),
                ("to", cgte_obs::Value::U64(min_s as u64)),
            ],
        );
        hook(ClusterEvent::WalkerMoved {
            walker: idx,
            from,
            to: min_s,
        });
    }
}

/// Marks a walker's shard dead and detaches the walker (it will be
/// re-placed from its last checkpoint next round).
fn shard_died(clients: &mut [RetryClient], w: &mut Walker, hook: &mut impl FnMut(ClusterEvent)) {
    if !clients[w.shard].is_open() {
        clients[w.shard].trip();
    }
    cgte_obs::event(
        cgte_obs::LEVEL_DETAIL,
        "cluster.shard_dead",
        &[("shard", cgte_obs::Value::U64(w.shard as u64))],
    );
    hook(ClusterEvent::ShardDead { shard: w.shard });
    w.session = None;
}

/// Opens or restores the walker's session on the first usable shard,
/// preferring its current assignment. Returns false when no shard can
/// take it (the walker is lost — degradation, not an error).
fn place_walker(
    cfg: &ClusterConfig,
    clients: &mut [RetryClient],
    w: &mut Walker,
    walker_idx: usize,
    reassignments: &mut usize,
    hook: &mut impl FnMut(ClusterEvent),
) -> Result<bool, ClusterError> {
    let n = clients.len();
    // Two passes: live shards first, then a half-open probe of dead ones
    // (a killed-and-restarted shard comes back this way).
    for pass in 0..2 {
        for off in 0..n {
            let s = (w.shard + off) % n;
            if clients[s].is_open() && (pass == 0 || !clients[s].probe()) {
                continue;
            }
            match open_or_restore(cfg, &mut clients[s], w)? {
                Some((session, len)) => {
                    if s != w.shard {
                        *reassignments += 1;
                        cgte_obs::event(
                            cgte_obs::LEVEL_DETAIL,
                            "cluster.walker_moved",
                            &[
                                ("walker", cgte_obs::Value::U64(walker_idx as u64)),
                                ("from", cgte_obs::Value::U64(w.shard as u64)),
                                ("to", cgte_obs::Value::U64(s as u64)),
                            ],
                        );
                        hook(ClusterEvent::WalkerMoved {
                            walker: walker_idx,
                            from: w.shard,
                            to: s,
                        });
                    }
                    w.shard = s;
                    w.session = Some(session);
                    w.done = len;
                    return Ok(true);
                }
                None => continue, // transport failure: shard now tripped
            }
        }
    }
    Ok(false)
}

/// Opens a fresh session (no checkpoint yet) or restores the last
/// checkpoint on `client`. `Ok(None)` means the shard failed at the
/// transport level; 4xx answers are coordinator-fatal.
fn open_or_restore(
    cfg: &ClusterConfig,
    client: &mut RetryClient,
    w: &mut Walker,
) -> Result<Option<(String, usize)>, ClusterError> {
    let outcome = match &w.checkpoint {
        Some((_, bytes)) => client.post("/sessions/restore", bytes),
        None => {
            let mut body = format!(
                "{{\"graph\":{},\"sampler\":{},\"seed\":{},\"burn_in\":{},\"thinning\":{}",
                crate::json::fmt_str(&cfg.graph),
                crate::json::fmt_str(&cfg.sampler),
                w.seed,
                cfg.burn_in,
                cfg.thinning,
            );
            if let Some(p) = &cfg.partition {
                body.push_str(&format!(",\"partition\":{}", crate::json::fmt_str(p)));
            }
            if let Some(d) = &cfg.design {
                body.push_str(&format!(",\"design\":{}", crate::json::fmt_str(d)));
            }
            body.push('}');
            client.post("/sessions", body.as_bytes())
        }
    };
    match outcome {
        Ok((200, body)) => {
            let session = json_str(&body, "session").ok_or_else(|| {
                ClusterError::Shard("session response carries no \"session\" id".to_string())
            })?;
            let len = json_u64(&body, "len").unwrap_or(0) as usize;
            let expect = w.checkpoint.as_ref().map_or(0, |(at, _)| *at);
            if len != expect {
                return Err(ClusterError::Shard(format!(
                    "restored session {session:?} has {len} samples, checkpoint had {expect}"
                )));
            }
            Ok(Some((session, len)))
        }
        Ok((status, body)) => Err(ClusterError::Shard(format!(
            "shard {} rejected session ({status}): {}",
            client.addr(),
            String::from_utf8_lossy(&body)
        ))),
        Err(_) => {
            client.trip();
            Ok(None)
        }
    }
}

/// Sends one ingest batch without blind retries. On a transport error the
/// session length is read back (itself retried — GET is idempotent) to
/// decide *applied* vs *lost*; only a provably-lost batch is re-sent.
/// `Ok(None)` means the shard is gone; any length the protocol cannot
/// explain is a hard error — never a silent wrong answer.
fn ingest_batch(
    client: &mut RetryClient,
    session: &str,
    batch: usize,
    len_before: usize,
) -> Result<Option<usize>, ClusterError> {
    let path = format!("/sessions/{session}/ingest");
    let body = format!("{{\"steps\":{batch}}}");
    let expected = len_before + batch;
    for _ in 0..=client.policy.max_retries {
        match client.post_no_retry(&path, body.as_bytes()) {
            Ok((200, resp)) => {
                let len = json_u64(&resp, "len").ok_or_else(|| {
                    ClusterError::Shard("ingest response carries no \"len\"".to_string())
                })? as usize;
                if len != expected {
                    return Err(ClusterError::Shard(format!(
                        "session {session:?} has {len} samples after ingest, expected {expected}"
                    )));
                }
                return Ok(Some(len));
            }
            Ok((status @ 500..=599, _)) => {
                // A 5xx means the request never took effect; fall through
                // to the resync which will observe `len_before` and let
                // the loop re-send.
                let _ = status;
            }
            Ok((status, resp)) => {
                return Err(ClusterError::Shard(format!(
                    "ingest rejected ({status}): {}",
                    String::from_utf8_lossy(&resp)
                )))
            }
            Err(ClientError::CircuitOpen) => return Ok(None),
            Err(_) => {}
        }
        // Resync: did the failed request land?
        match client.get(&format!("/sessions/{session}/estimate")) {
            Ok((200, resp)) => {
                let len = json_u64(&resp, "len").ok_or_else(|| {
                    ClusterError::Shard("estimate response carries no \"len\"".to_string())
                })? as usize;
                if len == expected {
                    return Ok(Some(len));
                }
                if len != len_before {
                    return Err(ClusterError::Shard(format!(
                        "session {session:?} resynced to {len} samples; expected {len_before} or {expected}"
                    )));
                }
                // Not applied: loop re-sends.
            }
            Ok((404, _)) => return Ok(None), // session lost (shard restarted)
            Ok((status, resp)) => {
                return Err(ClusterError::Shard(format!(
                    "resync failed ({status}): {}",
                    String::from_utf8_lossy(&resp)
                )))
            }
            Err(_) => return Ok(None),
        }
    }
    Ok(None)
}

/// Downloads and validates a session's current `.cgtes` state; `None` on
/// transport failure (shard presumed dead). An *invalid* snapshot from a
/// live shard is fatal — checksums passed HTTP but not the format, which
/// means a bug, not weather.
fn fetch_checkpoint(
    client: &mut RetryClient,
    session: &str,
    expect_len: usize,
    ctx: &ObservationContext<'_>,
) -> Result<Option<Vec<u8>>, ClusterError> {
    match client.get(&format!("/sessions/{session}/snapshot")) {
        Ok((200, bytes)) => {
            let container = snapshot::read_snapshot(&bytes[..])
                .map_err(|e| ClusterError::Shard(format!("downloaded snapshot: {e}")))?;
            let stream = snapshot::stream_from_container(&container, ctx)
                .map_err(|e| ClusterError::Shard(format!("downloaded snapshot: {e}")))?;
            if stream.len() != expect_len {
                return Err(ClusterError::Shard(format!(
                    "snapshot of {session:?} has {} samples, session had {expect_len}",
                    stream.len(),
                )));
            }
            Ok(Some(bytes))
        }
        Ok((status, body)) => Err(ClusterError::Shard(format!(
            "snapshot download failed ({status}): {}",
            String::from_utf8_lossy(&body)
        ))),
        Err(_) => Ok(None),
    }
}

/// The single-box path the cluster is pinned against: the same walkers,
/// seeds and batch boundaries, run locally through the same sampler
/// construction ([`build_sampler`]) and the same streaming kernel. Equal
/// [`ObservationStream`]s imply bit-equal estimates, since estimation is
/// one shared pure function of the stream.
pub fn single_box_reference(
    cfg: &ClusterConfig,
    graph: &Graph,
    partition: &Partition,
    ctx: &ObservationContext<'_>,
) -> Result<ObservationStream, ClusterError> {
    let mut merged = ObservationStream::new(ctx.num_categories());
    let mut nodes = Vec::new();
    for i in 0..cfg.walkers {
        let (sampler, design) = build_sampler(
            graph,
            partition,
            &cfg.sampler,
            cfg.design.as_deref(),
            cfg.burn_in,
            cfg.thinning,
        )?;
        let mut rng = StdRng::seed_from_u64(derive_walker_seed(cfg.seed, i));
        let mut remaining = cfg.steps_per_walker;
        while remaining > 0 {
            let batch = cfg.batch.min(remaining);
            sampler
                .try_sample_into(graph, batch, &mut rng, &mut nodes)
                .map_err(|e| ClusterError::Config(e.to_string()))?;
            merged.ingest_sampler(ctx, &nodes, &sampler, design);
            remaining -= batch;
        }
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walker_seeds_are_distinct_and_stable() {
        let s: Vec<u64> = (0..8).map(|i| derive_walker_seed(42, i)).collect();
        let again: Vec<u64> = (0..8).map(|i| derive_walker_seed(42, i)).collect();
        assert_eq!(s, again);
        for i in 0..s.len() {
            for j in i + 1..s.len() {
                assert_ne!(s[i], s[j]);
            }
        }
        assert_ne!(derive_walker_seed(42, 0), derive_walker_seed(43, 0));
    }

    #[test]
    fn backoff_is_bounded_and_jitter_seeded() {
        let policy = RetryPolicy {
            backoff_base: Duration::from_micros(100),
            backoff_max: Duration::from_micros(400),
            ..RetryPolicy::default()
        };
        let mut a = RetryClient::new("127.0.0.1:1", policy.clone(), 9);
        let mut b = RetryClient::new("127.0.0.1:1", policy, 9);
        // Same seed → same jitter sequence (observable via the counters).
        let before = counters::BACKOFF_MICROS_TOTAL.load(Ordering::Relaxed);
        a.backoff(1);
        let da = counters::BACKOFF_MICROS_TOTAL.load(Ordering::Relaxed) - before;
        let before = counters::BACKOFF_MICROS_TOTAL.load(Ordering::Relaxed);
        b.backoff(1);
        let db = counters::BACKOFF_MICROS_TOTAL.load(Ordering::Relaxed) - before;
        assert_eq!(da, db);
        assert!((50..=100).contains(&da), "jittered delay {da}µs");
    }

    #[test]
    fn circuit_opens_after_threshold_and_resets() {
        let policy = RetryPolicy {
            connect_timeout: Duration::from_millis(20),
            request_timeout: Duration::from_millis(20),
            max_retries: 0,
            backoff_base: Duration::from_micros(1),
            backoff_max: Duration::from_micros(1),
            breaker_threshold: 2,
        };
        // A bound-but-unserved port: connects may queue, requests die.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut c = RetryClient::new(addr.to_string(), policy, 1);
        assert!(c.get("/healthz").is_err());
        assert!(!c.is_open());
        assert!(c.get("/healthz").is_err());
        assert!(c.is_open());
        assert!(matches!(c.get("/healthz"), Err(ClientError::CircuitOpen)));
        c.reset();
        assert!(!c.is_open());
    }

    #[test]
    fn failed_half_open_probe_keeps_the_breaker_open() {
        let policy = RetryPolicy {
            connect_timeout: Duration::from_millis(20),
            request_timeout: Duration::from_millis(20),
            max_retries: 0,
            backoff_base: Duration::from_micros(1),
            backoff_max: Duration::from_micros(1),
            breaker_threshold: 2,
        };
        // A bound-but-unserved port: connects may queue, requests die —
        // exactly the shape of a dead-but-addressable shard.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut c = RetryClient::new(addr.to_string(), policy, 1);
        c.trip();
        assert!(c.is_open());
        // The probe must not leak a closed breaker: one failed GET is
        // below breaker_threshold, so a reset-then-request probe would
        // leave the circuit closed and the next round would hammer the
        // corpse with the full timeout budget.
        assert!(!c.probe());
        assert!(c.is_open(), "failed probe left the breaker closed");
        assert!(!c.probe());
        assert!(c.is_open());
    }

    #[test]
    fn retries_are_accounted_per_client() {
        let policy = RetryPolicy {
            backoff_base: Duration::from_micros(50),
            backoff_max: Duration::from_micros(100),
            ..RetryPolicy::default()
        };
        let mut a = RetryClient::new("127.0.0.1:1", policy.clone(), 7);
        let b = RetryClient::new("127.0.0.1:1", policy, 7);
        a.backoff(1);
        a.backoff(2);
        assert_eq!(a.retries_spent(), 2);
        assert_eq!(b.retries_spent(), 0, "retries bled across clients");
    }
}
