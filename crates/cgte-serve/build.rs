/// The event-driven connection engine maps raw `epoll`/`pipe2` syscalls
/// directly against libc (see `src/poll.rs`). Emit `cgte_epoll` only where
/// those declarations are known-correct: Linux on the 64-bit architectures
/// whose `O_*` flag values match the ones vendored in `poll.rs`. Everywhere
/// else the server silently uses the portable thread-per-connection path.
fn main() {
    println!("cargo:rustc-check-cfg=cfg(cgte_epoll)");
    let os = std::env::var("CARGO_CFG_TARGET_OS").unwrap_or_default();
    let arch = std::env::var("CARGO_CFG_TARGET_ARCH").unwrap_or_default();
    let linux = os == "linux" || os == "android";
    let known_arch = matches!(arch.as_str(), "x86_64" | "aarch64" | "riscv64");
    if linux && known_arch {
        println!("cargo:rustc-cfg=cgte_epoll");
    }
}
