//! Span wiring of the parallel coordinator: `cluster.walker` spans are
//! executed on pool worker threads, where thread-local span context does
//! not follow, so the coordinator threads the `cluster.round` span id
//! across the handoff explicitly (`span_with_parent`). This test lives in
//! its own integration binary because the tracer is process-global.

use cgte_graph::generators::{planted_partition, PlantedConfig};
use cgte_graph::store::{graph_sections, partition_section, Container, Section};
use cgte_graph::{Graph, Partition};
use cgte_sampling::ObservationContext;
use cgte_serve::cluster::{run_cluster, ClusterConfig, RetryPolicy};
use cgte_serve::{ServeConfig, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;
use std::io::{BufWriter, Write};
use std::sync::Arc;
use std::time::Duration;

fn field_u64(line: &str, key: &str) -> Option<u64> {
    line.split(&format!("\"{key}\":"))
        .nth(1)?
        .split([',', '}'])
        .next()?
        .parse()
        .ok()
}

#[test]
fn walker_spans_parent_to_their_round_across_the_pool() {
    let dir = std::env::temp_dir().join(format!("cgte-cluster-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    let pg = planted_partition(
        &PlantedConfig {
            category_sizes: vec![40, 80, 160],
            k: 6,
            alpha: 0.3,
        },
        &mut rng,
    )
    .unwrap();
    let (g, p): (Graph, Partition) = (pg.graph, pg.partition);
    let mut c = Container::new();
    c.push(Section::string("meta.kind", "graph"));
    for s in graph_sections(&g) {
        c.push(s);
    }
    c.push(partition_section("main", &p));
    let mut w = BufWriter::new(std::fs::File::create(dir.join("planted.cgteg")).unwrap());
    c.write_to(&mut w).unwrap();
    w.flush().unwrap();

    let server = Server::bind(&ServeConfig {
        cache_dir: dir.clone(),
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        ..ServeConfig::default()
    })
    .unwrap();

    let sink = Arc::new(cgte_obs::MemorySink::new());
    cgte_obs::install(sink.clone(), cgte_obs::LEVEL_DETAIL);
    let cfg = ClusterConfig {
        partition: Some("main".to_string()),
        walkers: 4,
        steps_per_walker: 60,
        batch: 20,
        snapshot_every: 1,
        round_threads: 2,
        policy: RetryPolicy {
            connect_timeout: Duration::from_millis(300),
            request_timeout: Duration::from_secs(2),
            ..RetryPolicy::default()
        },
        ..ClusterConfig::new("planted")
    };
    let ctx = ObservationContext::new(&g, &p);
    let run = run_cluster(&cfg, &[server.addr().to_string()], &ctx).unwrap();
    cgte_obs::shutdown();
    assert!(!run.degraded);

    let lines = sink.lines();
    let round_ids: BTreeSet<u64> = lines
        .iter()
        .filter(|l| l.contains("\"name\":\"cluster.round\""))
        .filter_map(|l| field_u64(l, "id"))
        .collect();
    let walkers: Vec<&String> = lines
        .iter()
        .filter(|l| l.contains("\"name\":\"cluster.walker\""))
        .collect();
    assert_eq!(round_ids.len(), run.rounds, "one span per round");
    // 4 walkers × 3 rounds, every trip executed on a pool thread.
    assert_eq!(walkers.len(), cfg.walkers * run.rounds, "{walkers:?}");
    for line in walkers {
        let parent = field_u64(line, "parent").unwrap_or(0);
        assert!(
            round_ids.contains(&parent),
            "walker span not parented to a round span: {line}"
        );
    }

    server.shutdown();
    server.join();
}
