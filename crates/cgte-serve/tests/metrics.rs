//! `/metrics` exposition-format tests: boot the service on a real
//! socket, drive a scripted session, scrape, and validate the body with
//! the strict Prometheus text parser from `cgte-obs` — every family
//! declared with HELP + TYPE, histogram buckets cumulative and
//! monotone, `_sum`/`_count` consistent — plus the endpoint-accounting
//! contract: scrape traffic (`/healthz`, `/metrics`) is counted under
//! its own endpoint label and **excluded** from the aggregate request
//! counter.

use cgte_graph::generators::{planted_partition, PlantedConfig};
use cgte_graph::store::{graph_sections, partition_section, Container, Section};
use cgte_graph::{Graph, Partition};
use cgte_obs::promtext;
use cgte_serve::client::Client;
use cgte_serve::{ServeConfig, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cgte-metrics-it-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_graph(dir: &Path, name: &str, g: &Graph, p: &Partition) {
    let mut c = Container::new();
    c.push(Section::string("meta.kind", "graph"));
    for s in graph_sections(g) {
        c.push(s);
    }
    c.push(partition_section("main", p));
    let mut w = BufWriter::new(std::fs::File::create(dir.join(format!("{name}.cgteg"))).unwrap());
    c.write_to(&mut w).unwrap();
    w.flush().unwrap();
}

fn planted() -> (Graph, Partition) {
    let mut rng = StdRng::seed_from_u64(1);
    let cfg = PlantedConfig {
        category_sizes: vec![40, 80, 160],
        k: 6,
        alpha: 0.3,
    };
    let pg = planted_partition(&cfg, &mut rng).unwrap();
    (pg.graph, pg.partition)
}

/// Sums one endpoint-labelled counter family by label.
fn endpoint_counts(exp: &promtext::Exposition, family: &str) -> Vec<(String, f64)> {
    exp.samples
        .iter()
        .filter(|s| s.name == family)
        .map(|s| {
            (
                s.label("endpoint").expect("endpoint label").to_string(),
                s.value,
            )
        })
        .collect()
}

#[test]
fn exposition_validates_and_endpoint_accounting_is_exact() {
    let dir = temp_store("expo");
    let (g, p) = planted();
    write_graph(&dir, "planted", &g, &p);
    let server = Server::bind(&ServeConfig {
        cache_dir: dir,
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // A scripted mix: listing, a full session lifecycle, an error path,
    // and scrape traffic that must stay out of the aggregate counter.
    let (st, _) = client.request("GET", "/graphs", "").unwrap();
    assert_eq!(st, 200);
    let (st, body) = client
        .request(
            "POST",
            "/sessions",
            "{\"graph\":\"planted\",\"sampler\":\"mhrw\",\"seed\":9}",
        )
        .unwrap();
    assert_eq!(st, 200, "{body}");
    let (st, _) = client
        .request("POST", "/sessions/s0/ingest", "{\"steps\":300}")
        .unwrap();
    assert_eq!(st, 200);
    let (st, _) = client.request("GET", "/sessions/s0/estimate", "").unwrap();
    assert_eq!(st, 200);
    let (st, _) = client
        .request("GET", "/sessions/nope/estimate", "")
        .unwrap();
    assert_eq!(st, 404);
    let (st, _) = client.request("DELETE", "/sessions/s0", "").unwrap();
    assert_eq!(st, 200);
    let (st, _) = client.request("GET", "/healthz", "").unwrap();
    assert_eq!(st, 200);
    // First scrape: gets counted under the metrics endpoint label so the
    // second scrape (the one we validate) can see it.
    let (st, _) = client.request("GET", "/metrics", "").unwrap();
    assert_eq!(st, 200);
    let (st, text) = client.request("GET", "/metrics", "").unwrap();
    assert_eq!(st, 200);
    server.shutdown();
    server.join();

    // The strict validator: TYPE of a known kind + HELP for every
    // family, finite counter values, cumulative monotone buckets,
    // `+Inf` == `_count`, `_sum`/`_count` present per histogram series.
    let stats = promtext::validate(&text).unwrap_or_else(|e| panic!("invalid exposition: {e:?}"));
    assert!(stats.families >= 14, "families: {}", stats.families);
    assert!(stats.histograms >= 2, "histograms: {}", stats.histograms);

    let exp = promtext::parse(&text).unwrap();
    assert_eq!(
        exp.types
            .get("cgte_serve_request_duration_seconds")
            .map(String::as_str),
        Some("histogram")
    );
    assert_eq!(
        exp.types
            .get("cgte_serve_response_size_bytes")
            .map(String::as_str),
        Some("histogram")
    );

    // Endpoint accounting: scrape endpoints appear under their own
    // label, and the aggregate counter is exactly the non-scrape sum.
    let by_endpoint = endpoint_counts(&exp, "cgte_serve_endpoint_requests_total");
    let count_of = |label: &str| {
        by_endpoint
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, v)| *v)
            .unwrap_or(0.0)
    };
    assert_eq!(count_of("healthz"), 1.0);
    assert_eq!(
        count_of("metrics"),
        1.0,
        "first scrape counted, second in flight"
    );
    assert_eq!(count_of("ingest"), 1.0);
    assert_eq!(
        count_of("estimate"),
        2.0,
        "valid + 404 path share the shape"
    );
    let aggregate = exp.value("cgte_serve_requests_total").unwrap();
    let non_scrape: f64 = by_endpoint
        .iter()
        .filter(|(l, _)| l != "healthz" && l != "metrics")
        .map(|(_, v)| v)
        .sum();
    assert_eq!(
        aggregate, non_scrape,
        "aggregate must exclude scrape traffic"
    );

    // Histogram `_count` agrees with the endpoint hit counter.
    let estimate_count = exp
        .samples
        .iter()
        .find(|s| {
            s.name == "cgte_serve_request_duration_seconds_count"
                && s.label("endpoint") == Some("estimate")
        })
        .expect("estimate latency histogram present")
        .value;
    assert_eq!(estimate_count, 2.0);

    // Server-side walk accounting: 300 MHRW transitions, some rejected.
    let steps = exp.value("cgte_serve_walk_steps_total").unwrap();
    let rejections = exp.value("cgte_serve_walk_rejections_total").unwrap();
    assert_eq!(steps, 300.0);
    assert!(
        rejections > 0.0 && rejections < steps,
        "rejections: {rejections}"
    );
}
