//! Durability tests of the session snapshot endpoints, plus the
//! robustness satellites: a session checkpointed to disk, the server
//! killed, and the session rehydrated on a fresh process must continue
//! **bit-exactly** — the restored walk draws the same nodes and the
//! estimate documents match byte for byte. Also covers TTL eviction,
//! the `--max-sessions` 429 backpressure path (with `Retry-After`),
//! and the `/metrics` Prometheus exposition.

use cgte_graph::generators::{planted_partition, PlantedConfig};
use cgte_graph::store::{graph_sections, partition_section, Container, Section};
use cgte_graph::{Graph, Partition};
use cgte_sampling::snapshot;
use cgte_scenarios::artifact::{parse_json, Json};
use cgte_serve::client::Client;
use cgte_serve::{ServeConfig, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};

const SEED: u64 = 0x5EED;

trait RequestOk {
    fn request_ok(&mut self, method: &str, path: &str, body: &str) -> (u16, String);
}

impl RequestOk for Client {
    fn request_ok(&mut self, method: &str, path: &str, body: &str) -> (u16, String) {
        self.request(method, path, body).unwrap()
    }
}

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cgte-snap-it-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_graph(dir: &Path, name: &str, g: &Graph, p: &Partition) {
    let mut c = Container::new();
    c.push(Section::string("meta.kind", "graph"));
    for s in graph_sections(g) {
        c.push(s);
    }
    c.push(partition_section("main", p));
    let mut w = BufWriter::new(std::fs::File::create(dir.join(format!("{name}.cgteg"))).unwrap());
    c.write_to(&mut w).unwrap();
    w.flush().unwrap();
}

fn planted() -> (Graph, Partition) {
    let mut rng = StdRng::seed_from_u64(1);
    let cfg = PlantedConfig {
        category_sizes: vec![40, 80, 160],
        k: 6,
        alpha: 0.3,
    };
    let pg = planted_partition(&cfg, &mut rng).unwrap();
    (pg.graph, pg.partition)
}

fn boot(dir: &Path, cfg: impl FnOnce(ServeConfig) -> ServeConfig) -> Server {
    Server::bind(&cfg(ServeConfig {
        cache_dir: dir.to_path_buf(),
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        ..ServeConfig::default()
    }))
    .unwrap()
}

/// One `Connection: close` request over a raw socket, returning the full
/// response text — the only way to see status line *and* headers, which
/// the shared client does not expose.
fn raw_request(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> String {
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(
        format!(
            "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        )
        .as_bytes(),
    )
    .unwrap();
    s.write_all(body).unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    out
}

/// Like [`raw_request`] but parsed, for binary bodies (`.cgtes` bytes in
/// either direction).
fn bytes_request(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> (u16, Vec<u8>) {
    let stream = TcpStream::connect(addr).unwrap();
    let mut w = stream.try_clone().unwrap();
    w.write_all(
        format!(
            "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        )
        .as_bytes(),
    )
    .unwrap();
    w.write_all(body).unwrap();
    w.flush().unwrap();
    let resp = cgte_serve::http::read_response(&mut BufReader::new(stream)).unwrap();
    (resp.status, resp.body)
}

fn json_u64(body: &str, key: &str) -> u64 {
    match parse_json(body).unwrap().get(key) {
        Some(Json::Num(x)) => *x as u64,
        other => panic!("{key} not a number in {body}: {other:?}"),
    }
}

/// The tentpole end-to-end: checkpoint a live walking session to disk,
/// kill the server process (drop it entirely), boot a fresh one on the
/// same store, restore — and the continued session must produce the
/// byte-identical estimate the uninterrupted one did, because the
/// snapshot carries the push log *and* the walker's RNG state.
#[test]
fn killed_server_restores_sessions_bit_exactly() {
    let dir = temp_store("kill-restore");
    let (g, p) = planted();
    write_graph(&dir, "planted", &g, &p);

    let first = boot(&dir, |c| c);
    let addr = first.addr();
    let mut client = Client::connect(addr).unwrap();

    let (st, body) = client.request_ok(
        "POST",
        "/sessions",
        &format!(
            "{{\"graph\":\"planted\",\"partition\":\"main\",\"sampler\":\"rw\",\"seed\":{SEED}}}"
        ),
    );
    assert_eq!(st, 200, "{body}");
    let (st, _) = client.request_ok("POST", "/sessions/s0/ingest", "{\"steps\":300}");
    assert_eq!(st, 200);

    // Checkpoint at 300 samples, then keep walking to 450 and record the
    // uninterrupted continuation's estimate.
    let (st, body) = client.request_ok("POST", "/sessions/s0/snapshot", "");
    assert_eq!(st, 200, "{body}");
    assert_eq!(json_u64(&body, "len"), 300);
    assert!(json_u64(&body, "bytes") > 0);
    let (st, _) = client.request_ok("POST", "/sessions/s0/ingest", "{\"steps\":150}");
    assert_eq!(st, 200);
    let (st, uninterrupted) = client.request_ok("GET", "/sessions/s0/estimate", "");
    assert_eq!(st, 200);

    // Kill the process. Only the .cgtes file survives.
    drop(client);
    first.shutdown();
    first.join();
    assert!(dir.join("sessions").join("s0.cgtes").is_file());

    let second = boot(&dir, |c| c);
    let mut client = Client::connect(second.addr()).unwrap();
    let (st, body) = client.request_ok("POST", "/sessions/restore", "{\"snapshot\":\"s0\"}");
    assert_eq!(st, 200, "{body}");
    let v = parse_json(&body).unwrap();
    assert_eq!(v.get("session").unwrap(), &Json::Str("s0".to_string()));
    assert_eq!(v.get("restored").unwrap(), &Json::Bool(true));
    assert_eq!(json_u64(&body, "len"), 300);

    // The restored walker re-draws the exact same 150 steps.
    let (st, _) = client.request_ok("POST", "/sessions/s0/ingest", "{\"steps\":150}");
    assert_eq!(st, 200);
    let (st, restored) = client.request_ok("GET", "/sessions/s0/estimate", "");
    assert_eq!(st, 200);
    assert_eq!(
        restored, uninterrupted,
        "continuation diverged after restore"
    );

    second.shutdown();
    second.join();
}

/// The binary route: download the `.cgtes` over HTTP, restore it by
/// POSTing the raw bytes back, and get an equivalent session — the
/// transport a sharded coordinator uses.
#[test]
fn snapshot_bytes_roundtrip_over_http() {
    let dir = temp_store("bytes");
    let (g, p) = planted();
    write_graph(&dir, "planted", &g, &p);
    let server = boot(&dir, |c| c);
    let addr = server.addr();
    let mut client = Client::connect(addr).unwrap();

    client.request_ok(
        "POST",
        "/sessions",
        &format!("{{\"graph\":\"planted\",\"sampler\":\"mhrw\",\"seed\":{SEED}}}"),
    );
    client.request_ok("POST", "/sessions/s0/ingest", "{\"steps\":120}");
    let (_, original) = client.request_ok("GET", "/sessions/s0/estimate", "");

    let (st, bytes) = bytes_request(addr, "GET", "/sessions/s0/snapshot", b"");
    assert_eq!(st, 200);
    assert!(bytes.starts_with(snapshot::MAGIC), "missing CGTES magic");

    let (st, body) = bytes_request(addr, "POST", "/sessions/restore", &bytes);
    assert_eq!(st, 200, "{}", String::from_utf8_lossy(&body));
    let body = String::from_utf8(body).unwrap();
    assert_eq!(json_u64(&body, "len"), 120);

    // The twin session reports the same estimate (modulo its id).
    let (st, twin) = client.request_ok("GET", "/sessions/s1/estimate", "");
    assert_eq!(st, 200);
    assert_eq!(twin.replace("\"s1\"", "\"s0\""), original);

    server.shutdown();
    server.join();
}

/// Hostile restore inputs fail with clean, typed HTTP errors.
#[test]
fn restore_rejects_bad_input() {
    let dir = temp_store("bad-restore");
    let (g, p) = planted();
    write_graph(&dir, "planted", &g, &p);
    let server = boot(&dir, |c| c);
    let addr = server.addr();
    let mut client = Client::connect(addr).unwrap();

    // Unknown snapshot name.
    let (st, _) = client.request_ok("POST", "/sessions/restore", "{\"snapshot\":\"nope\"}");
    assert_eq!(st, 404);
    // Path traversal in the name.
    let (st, _) = client.request_ok("POST", "/sessions/restore", "{\"snapshot\":\"../etc\"}");
    assert_eq!(st, 400);
    // Saving under a hostile name is refused too.
    client.request_ok(
        "POST",
        "/sessions",
        "{\"graph\":\"planted\",\"sampler\":\"uis\",\"seed\":7}",
    );
    client.request_ok("POST", "/sessions/s0/ingest", "{\"steps\":50}");
    let (st, _) = client.request_ok("POST", "/sessions/s0/snapshot?name=..%2Fx", "");
    assert_eq!(st, 400);

    // Corrupted and truncated snapshot bytes are 422, never a panic or a
    // silently shorter session.
    let (_, clean) = bytes_request(addr, "GET", "/sessions/s0/snapshot", b"");
    let mut corrupt = clean.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0xFF;
    let (st, _) = bytes_request(addr, "POST", "/sessions/restore", &corrupt);
    assert_eq!(st, 422);
    let (st, _) = bytes_request(addr, "POST", "/sessions/restore", &clean[..clean.len() - 7]);
    assert_eq!(st, 422);

    server.shutdown();
    server.join();
}

/// Idle sessions past their TTL are evicted (lazily, on the next pass);
/// in-flight handles are never reaped.
#[test]
fn idle_sessions_are_evicted_after_ttl() {
    let dir = temp_store("ttl");
    let (g, p) = planted();
    write_graph(&dir, "planted", &g, &p);
    let server = boot(&dir, |c| ServeConfig {
        session_ttl_secs: Some(0),
        ..c
    });
    let mut client = Client::connect(server.addr()).unwrap();

    client.request_ok(
        "POST",
        "/sessions",
        "{\"graph\":\"planted\",\"sampler\":\"uis\",\"seed\":3}",
    );
    std::thread::sleep(std::time::Duration::from_millis(50));
    // Any request sweeps; the idle session is gone.
    let (st, _) = client.request_ok("GET", "/healthz", "");
    assert_eq!(st, 200);
    let (st, _) = client.request_ok("GET", "/sessions/s0/estimate", "");
    assert_eq!(st, 404);
    let (_, metrics) = client.request_ok("GET", "/metrics", "");
    assert!(
        metrics.contains("cgte_serve_sessions_evicted_total 1"),
        "{metrics}"
    );

    server.shutdown();
    server.join();
}

/// Session admission control: over `max_sessions` the server answers 429
/// with a `Retry-After` header instead of growing without bound.
#[test]
fn session_cap_returns_429_with_retry_after() {
    let dir = temp_store("cap");
    let (g, p) = planted();
    write_graph(&dir, "planted", &g, &p);
    let server = boot(&dir, |c| ServeConfig {
        max_sessions: 1,
        ..c
    });
    let addr = server.addr();
    let mut client = Client::connect(addr).unwrap();

    let open = "{\"graph\":\"planted\",\"sampler\":\"uis\",\"seed\":5}";
    let (st, _) = client.request_ok("POST", "/sessions", open);
    assert_eq!(st, 200);

    let raw = raw_request(addr, "POST", "/sessions", open.as_bytes());
    assert!(
        raw.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
        "{raw}"
    );
    assert!(raw.contains("Retry-After: "), "{raw}");

    // Freeing the slot readmits.
    let (st, _) = client.request_ok("DELETE", "/sessions/s0", "");
    assert_eq!(st, 200);
    let (st, _) = client.request_ok("POST", "/sessions", open);
    assert_eq!(st, 200);

    server.shutdown();
    server.join();
}

/// `/metrics` speaks the Prometheus text exposition format and counts
/// real events.
#[test]
fn metrics_exposition_counts_events() {
    let dir = temp_store("metrics");
    let (g, p) = planted();
    write_graph(&dir, "planted", &g, &p);
    let server = boot(&dir, |c| c);
    let addr = server.addr();
    let mut client = Client::connect(addr).unwrap();

    client.request_ok(
        "POST",
        "/sessions",
        "{\"graph\":\"planted\",\"sampler\":\"rw\",\"seed\":9}",
    );
    client.request_ok("POST", "/sessions/s0/snapshot", "");

    let raw = raw_request(addr, "GET", "/metrics", b"");
    assert!(raw.starts_with("HTTP/1.1 200 OK\r\n"), "{raw}");
    assert!(
        raw.contains("Content-Type: text/plain; version=0.0.4"),
        "{raw}"
    );
    for family in [
        "# HELP cgte_serve_sessions_active",
        "# TYPE cgte_serve_sessions_active gauge",
        "cgte_serve_sessions_active 1",
        "cgte_serve_sessions_created_total 1",
        "cgte_serve_sessions_evicted_total 0",
        "cgte_serve_graph_loads_total 1",
        "cgte_serve_graph_builds_total 0",
        "cgte_serve_snapshots_saved_total 1",
        "cgte_serve_snapshots_restored_total 0",
        "cgte_client_retries_total",
        "cgte_serve_uptime_seconds",
    ] {
        assert!(raw.contains(family), "missing {family:?} in:\n{raw}");
    }

    server.shutdown();
    server.join();
}
