//! Integration tests for the event-driven connection engine: worker
//! starvation under `connections >> threads`, byte-identity between the
//! epoll engine and the thread-per-connection fallback, the slowloris
//! read deadline (408), the request-body cap (413), and the new
//! connection-health metric families.

use cgte_graph::generators::{planted_partition, PlantedConfig};
use cgte_graph::store::{graph_sections, partition_section, Container, Section};
use cgte_graph::{Graph, Partition};
use cgte_scenarios::artifact::{parse_json, Json};
use cgte_serve::client::Client;
use cgte_serve::{ServeConfig, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{BufWriter, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

const SEED: u64 = 0x5EED;

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cgte-serve-ev-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_graph(dir: &Path, name: &str, g: &Graph, p: &Partition) {
    let mut c = Container::new();
    c.push(Section::string("meta.kind", "graph"));
    for s in graph_sections(g) {
        c.push(s);
    }
    c.push(partition_section("main", p));
    let mut w = BufWriter::new(std::fs::File::create(dir.join(format!("{name}.cgteg"))).unwrap());
    c.write_to(&mut w).unwrap();
    w.flush().unwrap();
}

fn planted() -> (Graph, Partition) {
    let mut rng = StdRng::seed_from_u64(1);
    let cfg = PlantedConfig {
        category_sizes: vec![30, 60, 90],
        k: 5,
        alpha: 0.3,
    };
    let pg = planted_partition(&cfg, &mut rng).unwrap();
    (pg.graph, pg.partition)
}

fn config(dir: &Path) -> ServeConfig {
    ServeConfig {
        cache_dir: dir.to_path_buf(),
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        idle_poll_ms: 50,
        ..ServeConfig::default()
    }
}

fn as_f64(v: &Json) -> f64 {
    match v {
        Json::Num(x) => *x,
        other => panic!("expected number, got {other:?}"),
    }
}

/// Sends raw bytes on a fresh connection and reads the response to EOF.
fn raw_exchange(addr: std::net::SocketAddr, bytes: &[u8], timeout: Duration) -> String {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(timeout)).unwrap();
    s.write_all(bytes).unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    out
}

/// Scrapes one counter/gauge value out of the Prometheus exposition.
fn metric_value(metrics: &str, family: &str) -> f64 {
    metrics
        .lines()
        .find(|l| l.starts_with(family) && l.as_bytes().get(family.len()) == Some(&b' '))
        .unwrap_or_else(|| panic!("family {family} missing from:\n{metrics}"))
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap()
}

/// The tentpole contract: with far more open connections than worker
/// threads, a fresh request still answers promptly because parked idle
/// connections cost the event loop nothing.
#[cfg(cgte_epoll)]
#[test]
fn event_engine_serves_fresh_requests_past_many_idle_connections() {
    let dir = temp_store("idle");
    let (g, p) = planted();
    write_graph(&dir, "planted", &g, &p);
    let server = Server::bind(&config(&dir)).unwrap();
    let addr = server.addr();

    // 40 connections that never send a byte, parked in the interest set.
    let idle: Vec<TcpStream> = (0..40).map(|_| TcpStream::connect(addr).unwrap()).collect();
    // 8 more that completed a request and are now idle keep-alive — the
    // re-park path after a worker finishes a response.
    let parked: Vec<Client> = (0..8)
        .map(|_| {
            let mut c = Client::connect(addr).unwrap();
            let (st, _) = c.request("GET", "/healthz", "").unwrap();
            assert_eq!(st, 200);
            c
        })
        .collect();

    // 48 open connections against 2 workers: a fresh request must still
    // answer within the (generous) bound.
    let mut fresh = Client::connect(addr).unwrap();
    let (st, body) = fresh.request("GET", "/healthz", "").unwrap();
    assert_eq!(st, 200, "{body}");
    let h = parse_json(&body).unwrap();
    assert_eq!(h.get("event_loop").unwrap(), &Json::Bool(true));
    assert!(
        as_f64(h.get("connections").unwrap()) >= 49.0,
        "open-connection gauge undercounts: {body}"
    );

    let (st, metrics) = fresh.request("GET", "/metrics", "").unwrap();
    assert_eq!(st, 200);
    assert!(metric_value(&metrics, "cgte_serve_open_connections") >= 49.0);

    drop(idle);
    drop(parked);
    // Shutdown drains every parked connection: join() returning is the
    // clean-drain assertion.
    server.shutdown();
    server.join();
    std::fs::remove_dir_all(&dir).ok();
}

/// The contrast that motivates the tentpole: thread-per-connection pins a
/// worker per open connection, so `threads` idle keep-alive clients
/// starve every later arrival until one hangs up.
#[test]
fn fallback_engine_starves_fresh_requests_behind_idle_connections() {
    let dir = temp_store("starve");
    let (g, p) = planted();
    write_graph(&dir, "planted", &g, &p);
    let server = Server::bind(&ServeConfig {
        event_loop: false,
        ..config(&dir)
    })
    .unwrap();
    let addr = server.addr();

    // Two keep-alive clients occupy both workers.
    let occupiers: Vec<Client> = (0..2)
        .map(|_| {
            let mut c = Client::connect(addr).unwrap();
            let (st, _) = c.request("GET", "/healthz", "").unwrap();
            assert_eq!(st, 200);
            c
        })
        .collect();

    // A third connection queues behind them and gets no answer.
    let mut third = TcpStream::connect(addr).unwrap();
    third
        .write_all(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
        .unwrap();
    third
        .set_read_timeout(Some(Duration::from_millis(700)))
        .unwrap();
    let mut buf = [0u8; 1];
    let starved = third.read(&mut buf);
    assert!(
        matches!(&starved, Err(e) if matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        )),
        "thread-per-connection should starve the third request, got {starved:?}"
    );

    // Freeing a worker un-wedges the queue and the buffered request is
    // finally served.
    drop(occupiers);
    third
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut out = String::new();
    third.read_to_string(&mut out).ok();
    assert!(out.starts_with("HTTP/1.1 200"), "{out}");

    drop(third);
    server.shutdown();
    server.join();
    std::fs::remove_dir_all(&dir).ok();
}

/// Both connection engines must answer a scripted session — happy paths
/// and typed errors alike — with byte-identical bodies.
#[test]
fn engines_answer_byte_identically_on_a_scripted_session() {
    let dir = temp_store("ident");
    let (g, p) = planted();
    write_graph(&dir, "planted", &g, &p);

    let drive = |event_loop: bool| -> Vec<(u16, String)> {
        let server = Server::bind(&ServeConfig {
            event_loop,
            ..config(&dir)
        })
        .unwrap();
        let mut c = Client::connect(server.addr()).unwrap();
        let session_open = format!(
            "{{\"graph\":\"planted\",\"partition\":\"main\",\"sampler\":\"rw\",\"seed\":{SEED}}}"
        );
        let script: Vec<(&str, String, String)> = vec![
            ("GET", "/graphs".into(), String::new()),
            ("POST", "/sessions".into(), session_open),
            (
                "POST",
                "/sessions/s0/ingest".into(),
                "{\"steps\":250}".into(),
            ),
            ("GET", "/sessions/s0/estimate".into(), String::new()),
            (
                "GET",
                "/sessions/s0/estimate?ci=0.95&reps=50".into(),
                String::new(),
            ),
            ("POST", "/sessions".into(), "{not json".into()),
            ("POST", "/sessions".into(), "{\"graph\":\"nope\"}".into()),
            ("POST", "/sessions/s0/ingest".into(), "{\"steps\":0}".into()),
            ("GET", "/sessions/s9/estimate".into(), String::new()),
        ];
        let out = script
            .iter()
            .map(|(m, p, b)| c.request(m, p, b).unwrap())
            .collect();
        // The engine under test is really the one engaged (on platforms
        // without the vendored epoll layer both runs use the fallback).
        let (_, health) = c.request("GET", "/healthz", "").unwrap();
        let h = parse_json(&health).unwrap();
        let engaged = h.get("event_loop").unwrap() == &Json::Bool(true);
        assert_eq!(engaged, event_loop && cfg!(cgte_epoll));
        server.shutdown();
        server.join();
        out
    };

    let event = drive(true);
    let fallback = drive(false);
    assert_eq!(event.len(), fallback.len());
    for (i, (e, f)) in event.iter().zip(&fallback).enumerate() {
        assert_eq!(e.0, f.0, "status diverges at script step {i}");
        assert_eq!(e.1, f.1, "body diverges at script step {i}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Slowloris bound: a request that starts arriving but never completes is
/// answered 408 within the configured deadline on both engines, while a
/// connection that is merely idle (zero bytes sent) is never expired.
#[test]
fn stalled_requests_time_out_with_408_on_both_engines() {
    let dir = temp_store("slow");
    let (g, p) = planted();
    write_graph(&dir, "planted", &g, &p);
    for event_loop in [true, false] {
        let server = Server::bind(&ServeConfig {
            event_loop,
            request_timeout_ms: 300,
            ..config(&dir)
        })
        .unwrap();
        let addr = server.addr();

        // Half a request: headers promise 10 body bytes, only 3 arrive.
        let out = raw_exchange(
            addr,
            b"POST /sessions HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc",
            Duration::from_secs(10),
        );
        assert!(
            out.starts_with("HTTP/1.1 408"),
            "engine event_loop={event_loop}: {out}"
        );
        assert!(out.contains("timed out reading the request"), "{out}");

        // Headers that never terminate stall the same way.
        let out = raw_exchange(
            addr,
            b"GET /healthz HTTP/1.1\r\nX-Stall: yes",
            Duration::from_secs(10),
        );
        assert!(
            out.starts_with("HTTP/1.1 408"),
            "engine event_loop={event_loop}: {out}"
        );

        // An idle connection outlives the request deadline untouched: the
        // deadline arms on the first byte, not on accept.
        let mut idle = TcpStream::connect(addr).unwrap();
        std::thread::sleep(Duration::from_millis(600));
        idle.write_all(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();
        idle.set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut out = String::new();
        idle.read_to_string(&mut out).ok();
        assert!(
            out.starts_with("HTTP/1.1 200"),
            "idle connection was expired (event_loop={event_loop}): {out}"
        );
        drop(idle);

        let mut c = Client::connect(addr).unwrap();
        let (st, metrics) = c.request("GET", "/metrics", "").unwrap();
        assert_eq!(st, 200);
        assert!(
            metric_value(&metrics, "cgte_serve_request_timeouts_total") >= 2.0,
            "{metrics}"
        );
        server.shutdown();
        server.join();
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Request-body cap: a body longer than `max_body_bytes` answers 413
/// without being read, on both engines; an in-budget body still parses.
#[test]
fn oversized_bodies_are_rejected_with_413_on_both_engines() {
    let dir = temp_store("cap");
    let (g, p) = planted();
    write_graph(&dir, "planted", &g, &p);
    for event_loop in [true, false] {
        let server = Server::bind(&ServeConfig {
            event_loop,
            max_body_bytes: 1024,
            ..config(&dir)
        })
        .unwrap();
        let mut c = Client::connect(server.addr()).unwrap();
        let (st, body) = c.request("POST", "/sessions", &"x".repeat(2000)).unwrap();
        assert_eq!(st, 413, "engine event_loop={event_loop}: {body}");
        assert!(body.contains("exceeds the 1024 limit"), "{body}");

        // The 413 hangs up; an in-budget request on a new connection is
        // unaffected (it is malformed JSON, a typed 400 — not 413).
        let mut c = Client::connect(server.addr()).unwrap();
        let (st, _) = c.request("POST", "/sessions", &"x".repeat(1024)).unwrap();
        assert_eq!(st, 400);
        server.shutdown();
        server.join();
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The new connection-health families are present in the exposition with
/// their `# TYPE` declarations.
#[test]
fn metrics_exposes_connection_health_families() {
    let dir = temp_store("fam");
    let (g, p) = planted();
    write_graph(&dir, "planted", &g, &p);
    let server = Server::bind(&config(&dir)).unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    let (st, metrics) = c.request("GET", "/metrics", "").unwrap();
    assert_eq!(st, 200);
    for (family, kind) in [
        ("cgte_serve_open_connections", "gauge"),
        ("cgte_serve_accept_errors_total", "counter"),
        ("cgte_serve_request_timeouts_total", "counter"),
    ] {
        assert!(
            metrics.contains(&format!("# TYPE {family} {kind}")),
            "missing # TYPE {family} {kind}:\n{metrics}"
        );
    }
    assert!(metric_value(&metrics, "cgte_serve_open_connections") >= 1.0);
    assert_eq!(
        metric_value(&metrics, "cgte_serve_accept_errors_total"),
        0.0
    );
    server.shutdown();
    server.join();
    std::fs::remove_dir_all(&dir).ok();
}
