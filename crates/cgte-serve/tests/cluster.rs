//! Fault-tolerance tests of the sharded coordinator against real
//! `Server` instances over real TCP — including runs through the
//! deterministic fault-injection proxy and runs where a shard is killed
//! mid-flight. The invariant under test everywhere: the merged stream is
//! **bit-exact** against the single-box reference whenever the run is not
//! degraded, and a degraded run says so loudly (flag + coverage) instead
//! of hanging or answering silently wrong.

use cgte_core::{estimate_stream, StarSizeOptions};
use cgte_graph::generators::{planted_partition, PlantedConfig};
use cgte_graph::store::{graph_sections, partition_section, Container, Section};
use cgte_graph::{Graph, Partition};
use cgte_sampling::ObservationContext;
use cgte_serve::cluster::{
    run_cluster, run_cluster_with, single_box_reference, ClusterConfig, ClusterEvent, RetryPolicy,
};
use cgte_serve::fault::{FaultAction, FaultPlan, FaultProxy};
use cgte_serve::{ServeConfig, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cgte-cluster-it-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_graph(dir: &Path, name: &str, g: &Graph, p: &Partition) {
    let mut c = Container::new();
    c.push(Section::string("meta.kind", "graph"));
    for s in graph_sections(g) {
        c.push(s);
    }
    c.push(partition_section("main", p));
    let mut w = BufWriter::new(std::fs::File::create(dir.join(format!("{name}.cgteg"))).unwrap());
    c.write_to(&mut w).unwrap();
    w.flush().unwrap();
}

fn planted() -> (Graph, Partition) {
    let mut rng = StdRng::seed_from_u64(1);
    let cfg = PlantedConfig {
        category_sizes: vec![40, 80, 160],
        k: 6,
        alpha: 0.3,
    };
    let pg = planted_partition(&cfg, &mut rng).unwrap();
    (pg.graph, pg.partition)
}

fn boot(dir: &Path) -> Server {
    Server::bind(&ServeConfig {
        cache_dir: dir.to_path_buf(),
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        ..ServeConfig::default()
    })
    .unwrap()
}

/// Aggressive-but-calm timeouts for loopback tests: fast enough that a
/// dead shard is detected in milliseconds, long enough that a loaded CI
/// box never times out a healthy request.
fn test_policy() -> RetryPolicy {
    RetryPolicy {
        connect_timeout: Duration::from_millis(300),
        request_timeout: Duration::from_secs(2),
        max_retries: 3,
        backoff_base: Duration::from_millis(5),
        backoff_max: Duration::from_millis(20),
        breaker_threshold: 2,
    }
}

fn test_config(walkers: usize, steps: usize, batch: usize) -> ClusterConfig {
    ClusterConfig {
        partition: Some("main".to_string()),
        walkers,
        steps_per_walker: steps,
        batch,
        snapshot_every: 1,
        policy: test_policy(),
        ..ClusterConfig::new("planted")
    }
}

/// The healthy-path contract: a 2-shard cluster merges to the exact
/// stream — and therefore the exact estimate — one process computes
/// alone.
#[test]
fn two_shards_match_single_box_bit_exactly() {
    let dir = temp_store("exact");
    let (g, p) = planted();
    write_graph(&dir, "planted", &g, &p);
    let a = boot(&dir);
    let b = boot(&dir);
    let shards = vec![a.addr().to_string(), b.addr().to_string()];

    let mut cfg = test_config(4, 120, 30);
    cfg.snapshot_every = 2;
    let ctx = ObservationContext::new(&g, &p);
    let run = run_cluster(&cfg, &shards, &ctx).unwrap();

    assert!(!run.degraded);
    assert_eq!(run.walkers_completed, 4);
    assert_eq!(run.coverage, 1.0);
    assert_eq!(run.shards_alive, 2);

    let reference = single_box_reference(&cfg, &g, &p, &ctx).unwrap();
    assert_eq!(run.stream, reference, "merged stream is not bit-exact");
    // Estimation is a pure function of the stream, so this holds by
    // construction — asserted anyway as the user-visible contract.
    let opts = StarSizeOptions::default();
    let n = g.num_nodes() as f64;
    assert_eq!(
        estimate_stream(&run.stream, n, &opts),
        estimate_stream(&reference, n, &opts)
    );

    a.shutdown();
    b.shutdown();
    a.join();
    b.join();
}

/// A scripted gauntlet through the fault proxy: a slow-loris stall (the
/// client's timeout fires), a mid-body disconnect on a snapshot
/// download, and an injected 500 on an ingest — each recovered by the
/// retry/resync protocol with zero lost or duplicated samples.
#[test]
fn scripted_faults_recover_without_losing_or_duplicating_samples() {
    let dir = temp_store("script");
    let (g, p) = planted();
    write_graph(&dir, "planted", &g, &p);
    let server = boot(&dir);
    // Expected request sequence (one walker, 40 steps in batches of 20):
    //   0 open, 1 ingest (stalled → timeout), 2 resync estimate,
    //   3 ingest re-send, 4 checkpoint (truncated mid-body → retried),
    //   5 checkpoint retry, 6 ingest (injected 500), 7 resync estimate,
    //   8 ingest re-send, 9 final checkpoint, 10 delete.
    let proxy = FaultProxy::spawn(
        server.addr(),
        FaultPlan::Script(vec![
            FaultAction::Pass,
            FaultAction::Stall(1500),
            FaultAction::Pass,
            FaultAction::Pass,
            FaultAction::MidBodyDisconnect,
            FaultAction::Pass,
            FaultAction::ServerError,
        ]),
    )
    .unwrap();

    let mut cfg = test_config(1, 40, 20);
    cfg.policy.request_timeout = Duration::from_millis(300);
    cfg.policy.breaker_threshold = 10;
    let ctx = ObservationContext::new(&g, &p);
    let run = run_cluster(&cfg, &[proxy.addr().to_string()], &ctx).unwrap();

    assert!(!run.degraded, "faults must be survivable, not degrading");
    assert_eq!(run.walkers_completed, 1);
    assert!(run.retries >= 1, "the mid-body disconnect forces a retry");
    assert!(proxy.requests_seen() >= 11, "{}", proxy.requests_seen());
    let reference = single_box_reference(&cfg, &g, &p, &ctx).unwrap();
    assert_eq!(run.stream, reference);

    proxy.shutdown();
    server.shutdown();
    server.join();
}

/// Seeded pseudo-random fault soak: ~20% of all requests misbehave and
/// the answer must still come out bit-exact.
#[test]
fn seeded_fault_soak_stays_bit_exact() {
    let dir = temp_store("soak");
    let (g, p) = planted();
    write_graph(&dir, "planted", &g, &p);
    let server = boot(&dir);
    let proxy = FaultProxy::spawn(
        server.addr(),
        FaultPlan::Seeded {
            seed: 3,
            fault_percent: 20,
        },
    )
    .unwrap();

    let mut cfg = test_config(2, 60, 20);
    cfg.policy.request_timeout = Duration::from_millis(700);
    cfg.policy.max_retries = 4;
    cfg.policy.breaker_threshold = 100;
    let ctx = ObservationContext::new(&g, &p);
    let run = run_cluster(&cfg, &[proxy.addr().to_string()], &ctx).unwrap();

    assert!(!run.degraded);
    assert_eq!(run.walkers_completed, 2);
    let reference = single_box_reference(&cfg, &g, &p, &ctx).unwrap();
    assert_eq!(run.stream, reference);

    proxy.shutdown();
    server.shutdown();
    server.join();
}

/// The headline robustness scenario: one of two shards is killed
/// mid-run. Its walkers are restored from their last snapshots onto the
/// survivor and the final merged stream is still bit-exact — placement
/// never matters, only walker seeds and batch boundaries do.
#[test]
fn shard_killed_mid_run_recovers_bit_exactly() {
    let dir = temp_store("kill");
    let (g, p) = planted();
    write_graph(&dir, "planted", &g, &p);
    let a = boot(&dir);
    let b = boot(&dir);
    let shards = vec![a.addr().to_string(), b.addr().to_string()];

    let cfg = test_config(4, 120, 30);
    let ctx = ObservationContext::new(&g, &p);
    let killed = std::cell::Cell::new(false);
    let run = run_cluster_with(&cfg, &shards, &ctx, |e| {
        // Kill shard B right after every walker checkpointed round 1 —
        // a reproducible mid-run crash point.
        if e == (ClusterEvent::RoundDone { round: 1 }) && !killed.get() {
            b.shutdown();
            killed.set(true);
        }
    })
    .unwrap();

    assert!(killed.get());
    assert!(
        !run.degraded,
        "survivor must absorb the dead shard's walkers"
    );
    assert_eq!(run.walkers_completed, 4);
    assert!(
        run.reassignments >= 1,
        "walkers never moved off the dead shard"
    );
    assert_eq!(run.shards_alive, 1);
    let reference = single_box_reference(&cfg, &g, &p, &ctx).unwrap();
    assert_eq!(run.stream, reference, "recovery broke bit-exactness");

    a.shutdown();
    a.join();
    b.join();
}

/// Permanent total loss: every shard dies and stays dead. The run must
/// terminate (no hang), return `Ok`, and flag itself degraded with an
/// honest coverage number — never a silent partial answer.
#[test]
fn total_shard_loss_degrades_cleanly_without_hanging() {
    let dir = temp_store("loss");
    let (g, p) = planted();
    write_graph(&dir, "planted", &g, &p);
    let a = boot(&dir);
    let shards = vec![a.addr().to_string()];

    let cfg = test_config(2, 90, 30);
    let ctx = ObservationContext::new(&g, &p);
    let killed = std::cell::Cell::new(false);
    let run = run_cluster_with(&cfg, &shards, &ctx, |e| {
        if matches!(e, ClusterEvent::RoundDone { .. }) && !killed.get() {
            a.shutdown();
            killed.set(true);
        }
    })
    .unwrap();

    assert!(run.degraded);
    assert_eq!(run.walkers_completed, 0);
    assert_eq!(run.coverage, 0.0);
    assert_eq!(run.shards_alive, 0);
    assert!(run.stream.is_empty());

    a.join();
}

/// The threads×faults matrix: the merged stream must be bit-exact vs the
/// single-box reference at every `round_threads`, healthy or not. The
/// pool only moves HTTP trips off the coordinator thread — placement,
/// breaker transitions and the merge stay deterministic, so thread count
/// can never be observable in the result.
#[test]
fn round_threads_matrix_stays_bit_exact_under_faults() {
    let dir = temp_store("matrix");
    let (g, p) = planted();
    write_graph(&dir, "planted", &g, &p);
    let ctx = ObservationContext::new(&g, &p);

    for round_threads in [1usize, 4, 8] {
        // Axis 1: the seeded fault soak (~20% of requests misbehave).
        {
            let server = boot(&dir);
            let proxy = FaultProxy::spawn(
                server.addr(),
                FaultPlan::Seeded {
                    seed: 3,
                    fault_percent: 20,
                },
            )
            .unwrap();
            let mut cfg = test_config(8, 80, 20);
            cfg.round_threads = round_threads;
            cfg.policy.request_timeout = Duration::from_millis(700);
            cfg.policy.max_retries = 4;
            cfg.policy.breaker_threshold = 100;
            let run = run_cluster(&cfg, &[proxy.addr().to_string()], &ctx).unwrap();
            assert!(
                !run.degraded,
                "soak degraded at round_threads={round_threads}"
            );
            assert_eq!(run.walkers_completed, 8);
            let reference = single_box_reference(&cfg, &g, &p, &ctx).unwrap();
            assert_eq!(
                run.stream, reference,
                "soak not bit-exact at round_threads={round_threads}"
            );
            proxy.shutdown();
            server.shutdown();
            server.join();
        }
        // Axis 2: a shard killed mid-run, walkers restored on the survivor.
        {
            let a = boot(&dir);
            let b = boot(&dir);
            let shards = vec![a.addr().to_string(), b.addr().to_string()];
            let mut cfg = test_config(8, 80, 20);
            cfg.round_threads = round_threads;
            let killed = std::cell::Cell::new(false);
            let run = run_cluster_with(&cfg, &shards, &ctx, |e| {
                if e == (ClusterEvent::RoundDone { round: 1 }) && !killed.get() {
                    b.shutdown();
                    killed.set(true);
                }
            })
            .unwrap();
            assert!(killed.get());
            assert!(
                !run.degraded,
                "kill degraded at round_threads={round_threads}"
            );
            assert_eq!(run.walkers_completed, 8);
            assert!(run.reassignments >= 1);
            let reference = single_box_reference(&cfg, &g, &p, &ctx).unwrap();
            assert_eq!(
                run.stream, reference,
                "kill-recovery not bit-exact at round_threads={round_threads}"
            );
            a.shutdown();
            a.join();
            b.join();
        }
    }
}

/// Regression test for the half-open probe leak: a shard that keeps
/// failing its `/healthz` probe must stay quarantined. Before the fix,
/// `probe()` reset the breaker *before* the GET and never re-tripped it,
/// so one failed probe left the corpse looking alive — every later
/// placement then burned the full timeout budget against it, and the run
/// ended claiming both shards alive.
#[test]
fn failed_probes_keep_a_dead_shard_quarantined() {
    let dir = temp_store("probeleak");
    let (g, p) = planted();
    write_graph(&dir, "planted", &g, &p);
    let a = boot(&dir);
    let b = boot(&dir);
    // Shard B sits behind the gated proxy: flipping the gate makes every
    // request — probes included — answer 500 without touching B.
    let gate = Arc::new(AtomicBool::new(true));
    let proxy = FaultProxy::spawn(b.addr(), FaultPlan::Gated(Arc::clone(&gate))).unwrap();
    let shards = vec![a.addr().to_string(), proxy.addr().to_string()];

    let cfg = test_config(4, 120, 30);
    let ctx = ObservationContext::new(&g, &p);
    let down_at = std::cell::Cell::new(usize::MAX);
    let run = run_cluster_with(&cfg, &shards, &ctx, |e| {
        if e == (ClusterEvent::RoundDone { round: 0 }) && down_at.get() == usize::MAX {
            gate.store(false, Ordering::SeqCst);
            down_at.set(proxy.requests_seen());
        }
    })
    .unwrap();

    assert!(!run.degraded);
    assert_eq!(run.walkers_completed, 4);
    assert!(run.reassignments >= 1, "walkers never left the dead shard");
    assert_eq!(
        run.shards_alive, 1,
        "a failed probe leaked a closed breaker for the dead shard"
    );
    let reference = single_box_reference(&cfg, &g, &p, &ctx).unwrap();
    assert_eq!(run.stream, reference);

    // Trace the request indices: after the gate dropped, shard B may see
    // the dying round's ingest/resync traffic for sessions it already
    // hosted, plus half-open probes — but never another session open or
    // restore. A leaked breaker would send `open_or_restore` here.
    let log = proxy.request_log();
    assert!(down_at.get() < log.len(), "gate never dropped");
    let after_down = &log[down_at.get()..];
    assert!(
        after_down.iter().any(|r| r == "GET /healthz"),
        "the dead shard was never probed half-open: {after_down:?}"
    );
    for req in after_down {
        assert!(
            req != "POST /sessions" && req != "POST /sessions/restore",
            "placement attempted against the dead shard: {req} in {after_down:?}"
        );
    }

    proxy.shutdown();
    a.shutdown();
    b.shutdown();
    a.join();
    b.join();
}

/// Rejoin rebalancing: a shard that comes back (successful half-open
/// probe at a checkpoint boundary) gets walkers migrated back within one
/// checkpoint cadence, toward an even spread — and because every
/// migration restores a just-taken checkpoint, the merged stream stays
/// bit-exact through the whole down/up cycle.
#[test]
fn rejoined_shard_gets_walkers_back_within_one_cadence() {
    let dir = temp_store("rejoin");
    let (g, p) = planted();
    write_graph(&dir, "planted", &g, &p);
    let a = boot(&dir);
    let b = boot(&dir);
    let gate = Arc::new(AtomicBool::new(true));
    let proxy = FaultProxy::spawn(b.addr(), FaultPlan::Gated(Arc::clone(&gate))).unwrap();
    let shards = vec![a.addr().to_string(), proxy.addr().to_string()];

    let cfg = test_config(4, 300, 30);
    let ctx = ObservationContext::new(&g, &p);
    let events = std::cell::RefCell::new(Vec::new());
    let round = std::cell::Cell::new(0usize);
    let run = run_cluster_with(&cfg, &shards, &ctx, |e| {
        if e == (ClusterEvent::RoundDone { round: 1 }) {
            gate.store(false, Ordering::SeqCst); // B goes dark…
        }
        if e == (ClusterEvent::RoundDone { round: 4 }) {
            gate.store(true, Ordering::SeqCst); // …and comes back.
        }
        if let ClusterEvent::RoundDone { round: r } = e {
            round.set(r + 1);
        } else {
            events.borrow_mut().push((round.get(), e));
        }
    })
    .unwrap();

    assert!(!run.degraded);
    assert_eq!(run.walkers_completed, 4);
    assert_eq!(run.shards_alive, 2, "the rejoined shard counts as alive");
    let reference = single_box_reference(&cfg, &g, &p, &ctx).unwrap();
    assert_eq!(run.stream, reference, "rejoin cycle broke bit-exactness");

    let events = events.into_inner();
    let rejoin_round = events
        .iter()
        .find_map(|(r, e)| (*e == ClusterEvent::ShardRejoined { shard: 1 }).then_some(*r))
        .expect("shard 1 never rejoined");
    let back_round = events
        .iter()
        .find_map(|(r, e)| match e {
            ClusterEvent::WalkerMoved { to: 1, .. } if *r >= rejoin_round => Some(*r),
            _ => None,
        })
        .expect("no walker migrated back to the rejoined shard");
    // With snapshot_every = 1 the cadence is one round: the rebalance
    // fires at the same checkpoint boundary that observed the rejoin.
    assert!(
        back_round <= rejoin_round + cfg.snapshot_every,
        "migration back took {} rounds, cadence is {}",
        back_round - rejoin_round,
        cfg.snapshot_every
    );
    // The moved walkers really run there: B serves their restores.
    assert!(
        proxy
            .request_log()
            .iter()
            .any(|r| r == "POST /sessions/restore"),
        "the rejoined shard never restored a walker"
    );

    proxy.shutdown();
    a.shutdown();
    b.shutdown();
    a.join();
    b.join();
}

/// Two cluster runs in one process at the same time: each must report
/// its *own* transport retries. The pre-fix accounting diffed the
/// process-global retry counter around the run, so a concurrent run's
/// retries bled into the clean run's report.
#[test]
fn concurrent_runs_attribute_retries_to_their_own_run() {
    let dir = temp_store("retrown");
    let (g, p) = planted();
    write_graph(&dir, "planted", &g, &p);
    let noisy_server = boot(&dir);
    // The noisy run's final checkpoint download dies mid-body → ≥1 retry.
    let proxy = FaultProxy::spawn(
        noisy_server.addr(),
        FaultPlan::Script(vec![
            FaultAction::Pass,
            FaultAction::Pass,
            FaultAction::MidBodyDisconnect,
        ]),
    )
    .unwrap();
    let clean_server = boot(&dir);
    let ctx = ObservationContext::new(&g, &p);

    let barrier = std::sync::Barrier::new(2);
    let (noisy, clean) = std::thread::scope(|s| {
        let noisy = s.spawn(|| {
            let mut cfg = test_config(1, 20, 20);
            cfg.policy.request_timeout = Duration::from_millis(300);
            cfg.policy.breaker_threshold = 10;
            barrier.wait();
            run_cluster(&cfg, &[proxy.addr().to_string()], &ctx).unwrap()
        });
        let clean = s.spawn(|| {
            let cfg = test_config(4, 120, 30);
            barrier.wait();
            run_cluster(&cfg, &[clean_server.addr().to_string()], &ctx).unwrap()
        });
        (noisy.join().unwrap(), clean.join().unwrap())
    });

    assert!(!noisy.degraded);
    assert!(noisy.retries >= 1, "the mid-body disconnect forces a retry");
    assert!(!clean.degraded);
    assert_eq!(
        clean.retries, 0,
        "a concurrent run's retries bled into this run's accounting"
    );

    proxy.shutdown();
    noisy_server.shutdown();
    clean_server.shutdown();
    noisy_server.join();
    clean_server.join();
}
