//! End-to-end tests of the estimation service over a real TCP socket:
//! boot on an ephemeral port, drive a scripted session with a plain
//! `std::net::TcpStream` client, and pin the estimate JSON **bit-exactly**
//! against the batch path's numbers — the same sampled sequence through
//! `run_experiment`'s snapshot function must reproduce every value the
//! server returned, down to the last ulp (shortest round-trip JSON
//! floats).

use cgte_core::{estimate_stream, StarSizeOptions};
use cgte_eval::{nrmse_from_errors, run_experiment, ExperimentConfig, Target};
use cgte_graph::generators::{planted_partition, PlantedConfig};
use cgte_graph::store::{graph_sections, partition_section, Container, Section};
use cgte_graph::{Graph, NodeId, Partition};
use cgte_sampling::{
    AnySampler, DesignKind, NodeSampler, ObservationContext, ObservationStream, RandomWalk,
};
use cgte_scenarios::artifact::{parse_json, Json};
use cgte_serve::client::Client;
use cgte_serve::{ServeConfig, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

const SEED: u64 = 0x5EED;

/// Unwrapping sugar over the shared client for test brevity.
trait RequestOk {
    fn request_ok(&mut self, method: &str, path: &str, body: &str) -> (u16, String);
}

impl RequestOk for Client {
    fn request_ok(&mut self, method: &str, path: &str, body: &str) -> (u16, String) {
        self.request(method, path, body).unwrap()
    }
}

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cgte-serve-it-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_graph(dir: &Path, name: &str, g: &Graph, p: &Partition) {
    let mut c = Container::new();
    c.push(Section::string("meta.kind", "graph"));
    for s in graph_sections(g) {
        c.push(s);
    }
    c.push(partition_section("main", p));
    let mut w = BufWriter::new(std::fs::File::create(dir.join(format!("{name}.cgteg"))).unwrap());
    c.write_to(&mut w).unwrap();
    w.flush().unwrap();
}

fn planted() -> (Graph, Partition) {
    let mut rng = StdRng::seed_from_u64(1);
    let cfg = PlantedConfig {
        category_sizes: vec![40, 80, 160],
        k: 6,
        alpha: 0.3,
    };
    let pg = planted_partition(&cfg, &mut rng).unwrap();
    (pg.graph, pg.partition)
}

fn f64_at<'a>(v: &'a Json, path: &[&str]) -> &'a Json {
    let mut cur = v;
    for k in path {
        cur = cur.get(k).unwrap_or_else(|| panic!("missing key {k:?}"));
    }
    cur
}

fn as_f64(v: &Json) -> f64 {
    match v {
        Json::Num(x) => *x,
        other => panic!("expected number, got {other:?}"),
    }
}

#[test]
fn scripted_session_estimates_are_bit_identical_to_batch_path() {
    let dir = temp_store("golden");
    let (g, p) = planted();
    write_graph(&dir, "planted", &g, &p);
    let server = Server::bind(&ServeConfig {
        cache_dir: dir.clone(),
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    let mut client = Client::connect(addr).unwrap();

    // /graphs lists the entry without loading it.
    let (st, body) = client.request_ok("GET", "/graphs", "");
    assert_eq!(st, 200, "{body}");
    let v = parse_json(&body).unwrap();
    let graphs = match v.get("graphs").unwrap() {
        Json::Arr(a) => a,
        other => panic!("graphs not an array: {other:?}"),
    };
    assert_eq!(graphs.len(), 1);
    assert_eq!(
        f64_at(&graphs[0], &["name"]),
        &Json::Str("planted".to_string())
    );
    assert_eq!(as_f64(f64_at(&graphs[0], &["nodes"])), 280.0);

    // Open a weighted RW session and feed it the exact sequence the batch
    // experiment runner draws for replication 0 of this seed.
    let (st, body) = client.request_ok(
        "POST",
        "/sessions",
        &format!(
            "{{\"graph\":\"planted\",\"partition\":\"main\",\"sampler\":\"rw\",\"seed\":{SEED}}}"
        ),
    );
    assert_eq!(st, 200, "{body}");
    let v = parse_json(&body).unwrap();
    assert_eq!(v.get("session").unwrap(), &Json::Str("s0".to_string()));
    assert_eq!(as_f64(v.get("num_categories").unwrap()), 3.0);

    let rw = RandomWalk::new();
    let sample_size = 400usize;
    let nodes = rw.sample(&g, sample_size, &mut StdRng::seed_from_u64(SEED));
    let ids: Vec<String> = nodes.iter().map(|v| v.to_string()).collect();
    let (st, body) = client.request_ok(
        "POST",
        "/sessions/s0/ingest",
        &format!("{{\"nodes\":[{}]}}", ids.join(",")),
    );
    assert_eq!(st, 200, "{body}");
    let v = parse_json(&body).unwrap();
    assert_eq!(as_f64(v.get("len").unwrap()), sample_size as f64);

    let (st, body) = client.request_ok("GET", "/sessions/s0/estimate", "");
    assert_eq!(st, 200, "{body}");

    // The batch path: same sequence through the same streaming kernel.
    let ctx = ObservationContext::new(&g, &p);
    let mut stream = ObservationStream::new(p.num_categories());
    stream.ingest_sampler(&ctx, &nodes, &rw, DesignKind::Weighted);
    let expected = estimate_stream(&stream, g.num_nodes() as f64, &StarSizeOptions::default());

    let v = parse_json(&body).unwrap();
    let got_induced = match f64_at(&v, &["sizes", "induced"]) {
        Json::Arr(a) => a.iter().map(as_f64).collect::<Vec<_>>(),
        other => panic!("sizes.induced: {other:?}"),
    };
    assert_eq!(got_induced.len(), 3);
    for (c, (&got, &want)) in got_induced.iter().zip(&expected.sizes_induced).enumerate() {
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "induced size of category {c}: {got} vs {want}"
        );
    }
    let got_star = match f64_at(&v, &["sizes", "star"]) {
        Json::Arr(a) => a
            .iter()
            .map(|x| match x {
                Json::Null => None,
                other => Some(as_f64(other)),
            })
            .collect::<Vec<_>>(),
        other => panic!("sizes.star: {other:?}"),
    };
    for (c, (got, want)) in got_star.iter().zip(&expected.sizes_star).enumerate() {
        match (got, want) {
            (Some(a), Some(b)) => assert_eq!(a.to_bits(), b.to_bits(), "star size {c}"),
            (None, None) => {}
            other => panic!("star size {c} definedness mismatch: {other:?}"),
        }
    }
    for key in ["induced", "star"] {
        let triplets = match f64_at(&v, &["weights", key]) {
            Json::Arr(a) => a,
            other => panic!("weights.{key}: {other:?}"),
        };
        let want = if key == "induced" {
            &expected.weights_induced
        } else {
            &expected.weights_star
        };
        let want_nonzero: Vec<(u32, u32, f64)> = want.iter_nonzero().collect();
        assert_eq!(triplets.len(), want_nonzero.len(), "weights.{key} count");
        for (t, (a, b, w)) in triplets.iter().zip(want_nonzero) {
            let arr = match t {
                Json::Arr(x) => x,
                other => panic!("triplet: {other:?}"),
            };
            assert_eq!(as_f64(&arr[0]) as u32, a);
            assert_eq!(as_f64(&arr[1]) as u32, b);
            assert_eq!(
                as_f64(&arr[2]).to_bits(),
                w.to_bits(),
                "weights.{key}[{a},{b}]"
            );
        }
    }

    // Close the loop against run_experiment itself: one replication, one
    // prefix size — its recorded NRMSE must equal the NRMSE recomputed
    // from the server's estimate values, bit for bit.
    let cfg = ExperimentConfig::new(vec![sample_size], 1).seed(SEED);
    let targets = [Target::Size(2), Target::Weight(0, 1)];
    let res = run_experiment(&g, &p, &AnySampler::Rw(RandomWalk::new()), &targets, &cfg);
    let truth_size = res.truth(Target::Size(2)).unwrap();
    let serve_size = got_induced[2];
    let expect_nrmse = nrmse_from_errors((serve_size - truth_size).powi(2), 1, truth_size).unwrap();
    let got_nrmse = res
        .nrmse(cgte_eval::EstimatorKind::InducedSize, Target::Size(2))
        .unwrap()[0];
    assert_eq!(
        got_nrmse.to_bits(),
        expect_nrmse.to_bits(),
        "run_experiment NRMSE vs serve-derived NRMSE"
    );

    // Determinism golden: a second identical session returns a byte-for-
    // byte identical estimate document (modulo the session id).
    let (st, body2) = client.request_ok(
        "POST",
        "/sessions",
        &format!(
            "{{\"graph\":\"planted\",\"partition\":\"main\",\"sampler\":\"rw\",\"seed\":{SEED}}}"
        ),
    );
    assert_eq!(st, 200, "{body2}");
    let (_, _) = client.request_ok(
        "POST",
        "/sessions/s1/ingest",
        &format!("{{\"nodes\":[{}]}}", ids.join(",")),
    );
    let (_, est2) = client.request_ok("GET", "/sessions/s1/estimate", "");
    assert_eq!(est2.replace("\"s1\"", "\"s0\""), body);

    // Zero builds ever: the health endpoint pins the invariant.
    let (_, health) = client.request_ok("GET", "/healthz", "");
    let h = parse_json(&health).unwrap();
    assert_eq!(as_f64(h.get("builds").unwrap()), 0.0);
    assert_eq!(as_f64(h.get("loads").unwrap()), 1.0);

    server.shutdown();
    server.join();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn server_side_walk_matches_batch_draw_and_surfaces_422() {
    let dir = temp_store("walk");
    let (g, p) = planted();
    write_graph(&dir, "planted", &g, &p);
    // An edgeless graph to exercise the typed sampler error end to end.
    let edgeless = cgte_graph::GraphBuilder::new(5).build();
    let ep = Partition::from_assignments(vec![0; 5], 1).unwrap();
    write_graph(&dir, "edgeless", &edgeless, &ep);

    let server = Server::bind(&ServeConfig {
        cache_dir: dir.clone(),
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // Server-side walk: one batch of n steps is bit-identical to the
    // local sampler draw with the same seed.
    let (st, _) = client.request_ok(
        "POST",
        "/sessions",
        &format!("{{\"graph\":\"planted\",\"sampler\":\"rw\",\"seed\":{SEED}}}"),
    );
    assert_eq!(st, 200);
    let (st, body) = client.request_ok("POST", "/sessions/s0/ingest", "{\"steps\":300}");
    assert_eq!(st, 200, "{body}");
    let (_, est_served) = client.request_ok("GET", "/sessions/s0/estimate", "");

    let rw = RandomWalk::new();
    let nodes: Vec<NodeId> = rw.sample(&g, 300, &mut StdRng::seed_from_u64(SEED));
    let ctx = ObservationContext::new(&g, &p);
    let mut stream = ObservationStream::new(p.num_categories());
    stream.ingest_sampler(&ctx, &nodes, &rw, DesignKind::Weighted);
    let expected = estimate_stream(&stream, g.num_nodes() as f64, &StarSizeOptions::default());
    let v = parse_json(&est_served).unwrap();
    let got = match f64_at(&v, &["sizes", "induced"]) {
        Json::Arr(a) => a.iter().map(as_f64).collect::<Vec<_>>(),
        other => panic!("{other:?}"),
    };
    for (got, want) in got.iter().zip(&expected.sizes_induced) {
        assert_eq!(got.to_bits(), want.to_bits());
    }

    // Sampler failure surfaces as 422 (typed SampleError), not 500.
    let (st, _) = client.request_ok(
        "POST",
        "/sessions",
        "{\"graph\":\"edgeless\",\"sampler\":\"rw\"}",
    );
    assert_eq!(st, 200);
    let (st, body) = client.request_ok("POST", "/sessions/s1/ingest", "{\"steps\":10}");
    assert_eq!(st, 422, "{body}");
    assert!(body.contains("edgeless"), "{body}");

    // Bad inputs: unknown graph 404, bad sampler 422, bad JSON 400,
    // out-of-range node 422, unknown session 404.
    let (st, _) = client.request_ok("POST", "/sessions", "{\"graph\":\"nope\"}");
    assert_eq!(st, 404);
    let (st, _) = client.request_ok(
        "POST",
        "/sessions",
        "{\"graph\":\"planted\",\"sampler\":\"bogus\"}",
    );
    assert_eq!(st, 422);
    let (st, _) = client.request_ok("POST", "/sessions", "{not json");
    assert_eq!(st, 400);
    let (st, body) = client.request_ok("POST", "/sessions/s0/ingest", "{\"nodes\":[999999]}");
    assert_eq!(st, 422, "{body}");
    // `steps: null` is a typed 422, not a worker panic (a panicking
    // worker would shrink the pool for the server's lifetime).
    let (st, body) = client.request_ok("POST", "/sessions/s0/ingest", "{\"steps\":null}");
    assert_eq!(st, 422, "{body}");
    let (st, _) = client.request_ok("POST", "/sessions/s0/ingest", "{\"steps\":0}");
    assert_eq!(st, 422);
    let (st, _) = client.request_ok("GET", "/sessions/s99/estimate", "");
    assert_eq!(st, 404);

    // Bootstrap CIs: deterministic, bracket-shaped, session-scoped.
    let (st, ci1) = client.request_ok("GET", "/sessions/s0/estimate?ci=0.95&reps=50", "");
    assert_eq!(st, 200, "{ci1}");
    let (_, ci2) = client.request_ok("GET", "/sessions/s0/estimate?ci=0.95&reps=50", "");
    assert_eq!(ci1, ci2, "CI queries must be deterministic");
    let v = parse_json(&ci1).unwrap();
    let ci = v.get("ci").unwrap();
    assert_eq!(as_f64(ci.get("level").unwrap()), 0.95);
    let stars = match ci.get("sizes_star").unwrap() {
        Json::Arr(a) => a,
        other => panic!("{other:?}"),
    };
    assert_eq!(stars.len(), 3);
    for s in stars {
        if let Json::Obj(_) = s {
            let lo = as_f64(s.get("lo").unwrap());
            let hi = as_f64(s.get("hi").unwrap());
            assert!(lo <= hi);
        }
    }
    let (st, _) = client.request_ok("GET", "/sessions/s0/estimate?ci=1.5", "");
    assert_eq!(st, 422);

    // Session close.
    let (st, _) = client.request_ok("DELETE", "/sessions/s0", "");
    assert_eq!(st, 200);
    let (st, _) = client.request_ok("GET", "/sessions/s0/estimate", "");
    assert_eq!(st, 404);

    server.shutdown();
    server.join();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_sessions_across_connections() {
    let dir = temp_store("conc");
    let (g, p) = planted();
    write_graph(&dir, "planted", &g, &p);
    let server = Server::bind(&ServeConfig {
        cache_dir: dir.clone(),
        addr: "127.0.0.1:0".to_string(),
        threads: 4,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    let bodies: Vec<String> = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|i| {
                scope.spawn(move |_| {
                    let mut c = Client::connect(addr).unwrap();
                    let (st, body) = c
                        .request(
                            "POST",
                            "/sessions",
                            &format!(
                                "{{\"graph\":\"planted\",\"sampler\":\"uis\",\"seed\":{}}}",
                                100 + i
                            ),
                        )
                        .unwrap();
                    assert_eq!(st, 200, "{body}");
                    let id = match parse_json(&body).unwrap().get("session").unwrap() {
                        Json::Str(s) => s.clone(),
                        other => panic!("{other:?}"),
                    };
                    let (st, _) = c
                        .request("POST", &format!("/sessions/{id}/ingest"), "{\"steps\":200}")
                        .unwrap();
                    assert_eq!(st, 200);
                    let (st, est) = c
                        .request("GET", &format!("/sessions/{id}/estimate"), "")
                        .unwrap();
                    assert_eq!(st, 200);
                    est
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
    .unwrap();
    assert_eq!(bodies.len(), 4);
    for b in &bodies {
        let v = parse_json(b).unwrap();
        assert_eq!(as_f64(v.get("len").unwrap()), 200.0);
    }
    server.shutdown();
    server.join();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mmap_and_heap_hosted_sessions_estimate_bit_identically() {
    // The zero-copy acceptance contract: the same scripted session on a
    // mapped-hosted graph and on a heap-hosted graph must produce the
    // exact same estimate JSON — shortest round-trip floats, so byte
    // equality of the bodies is f64::to_bits equality of every value.
    let dir = temp_store("mmap-id");
    let (g, p) = planted();
    write_graph(&dir, "planted", &g, &p);
    let rw = RandomWalk::new();
    let nodes = rw.sample(&g, 400, &mut StdRng::seed_from_u64(SEED));
    let ids: Vec<String> = nodes.iter().map(|v| v.to_string()).collect();

    let drive = |mmap: bool| -> String {
        let server = Server::bind(&ServeConfig {
            cache_dir: dir.clone(),
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
            mmap,
            ..ServeConfig::default()
        })
        .unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        let (st, body) = client.request_ok(
            "POST",
            "/sessions",
            &format!(
                "{{\"graph\":\"planted\",\"partition\":\"main\",\"sampler\":\"rw\",\"seed\":{SEED}}}"
            ),
        );
        assert_eq!(st, 200, "{body}");
        let (st, body) = client.request_ok(
            "POST",
            "/sessions/s0/ingest",
            &format!("{{\"nodes\":[{}]}}", ids.join(",")),
        );
        assert_eq!(st, 200, "{body}");
        let (st, est) = client.request_ok("GET", "/sessions/s0/estimate?ci=0.95", "");
        assert_eq!(st, 200, "{est}");
        // Either hosting mode performs zero builds.
        let (_, health) = client.request_ok("GET", "/healthz", "");
        let h = parse_json(&health).unwrap();
        assert_eq!(as_f64(h.get("builds").unwrap()), 0.0);
        server.shutdown();
        server.join();
        est
    };

    let mapped = drive(true);
    let heap = drive(false);
    assert_eq!(mapped, heap, "mapped vs heap estimate bodies diverge");
    std::fs::remove_dir_all(&dir).ok();
}
