//! Exact-enumeration unbiasedness tests.
//!
//! On tiny hand-built graphs (≤ 6 nodes), *every* UIS sample of a fixed
//! size can be enumerated — `n^m` ordered with-replacement tuples, each of
//! probability `1/n^m`. Averaging an estimator over all tuples computes
//! its expectation **exactly** (up to f64 rounding), so these tests pin
//! the estimators' defining properties with no statistical tolerance:
//!
//! - the induced category-size estimator (Eq. 4) is exactly unbiased:
//!   `E[|Â|] = |A|` for every category and sample size;
//! - the induced edge-weight estimator (Eq. 8) is exactly conditionally
//!   unbiased: `E[ŵ(A,B) | both categories sampled] = w(A,B)`;
//! - the star variants (Eq. 5 size, Eq. 9 weight) match hand-computed
//!   values on explicit samples.

use cgte_core::category_size::{
    induced_size, mean_degree, mean_degree_in, relative_volume, star_size,
};
use cgte_core::edge_weight::{induced_weight, star_weight};
use cgte_core::StarSizeOptions;
use cgte_graph::{CategoryGraph, Graph, GraphBuilder, NodeId, Partition};
use cgte_sampling::{InducedSample, StarSample};

/// Two triangles joined by a bridge: categories {0,1,2} and {3,4,5}.
/// Degrees 2,2,3,3,2,2; one cut edge, so w(A,B) = 1/9.
fn bridge() -> (Graph, Partition) {
    let g = GraphBuilder::from_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
        .unwrap();
    let p = Partition::from_assignments(vec![0, 0, 0, 1, 1, 1], 2).unwrap();
    (g, p)
}

/// A 5-node star with uneven categories: center + one leaf in category 0,
/// three leaves in category 1. Heavily degree-skewed, which is where
/// biased estimators would show.
fn star5() -> (Graph, Partition) {
    let mut b = GraphBuilder::new(5);
    for v in 1..5 {
        b.add_edge(0, v).unwrap();
    }
    let g = b.build();
    let p = Partition::from_assignments(vec![0, 0, 1, 1, 1], 2).unwrap();
    (g, p)
}

/// Calls `f` with every ordered with-replacement tuple of `m` node ids.
fn for_all_tuples(n: usize, m: usize, mut f: impl FnMut(&[NodeId])) {
    let mut tuple = vec![0 as NodeId; m];
    loop {
        f(&tuple);
        // Odometer increment.
        let mut i = 0;
        loop {
            if i == m {
                return;
            }
            tuple[i] += 1;
            if (tuple[i] as usize) < n {
                break;
            }
            tuple[i] = 0;
            i += 1;
        }
    }
}

#[test]
fn induced_size_eq4_exactly_unbiased_under_uis() {
    for (g, p) in [bridge(), star5()] {
        let n = g.num_nodes();
        let cg = CategoryGraph::exact(&g, &p);
        for m in [1usize, 2, 3] {
            let tuples = (n as f64).powi(m as i32);
            for c in 0..p.num_categories() as u32 {
                let mut sum = 0.0f64;
                for_all_tuples(n, m, |nodes| {
                    let s = InducedSample::observe(&g, &p, nodes);
                    sum += induced_size(&s, c, n as f64).expect("non-empty sample");
                });
                let truth = cg.size(c);
                let mean = sum / tuples;
                assert!(
                    (mean - truth).abs() < 1e-9,
                    "n={n} m={m} cat {c}: E[|Â|] = {mean}, |A| = {truth}"
                );
            }
        }
    }
}

#[test]
fn induced_weight_eq8_exactly_conditionally_unbiased_under_uis() {
    for (g, p) in [bridge(), star5()] {
        let n = g.num_nodes();
        let cg = CategoryGraph::exact(&g, &p);
        let truth = cg.weight(0, 1);
        assert!(truth > 0.0, "fixtures have a cut edge");
        for m in [2usize, 3, 4] {
            let mut sum = 0.0f64;
            let mut defined = 0usize;
            for_all_tuples(n, m, |nodes| {
                let s = InducedSample::observe(&g, &p, nodes);
                if let Some(w) = induced_weight(&s, 0, 1) {
                    sum += w;
                    defined += 1;
                }
            });
            assert!(defined > 0);
            let mean = sum / defined as f64;
            assert!(
                (mean - truth).abs() < 1e-9,
                "n={n} m={m}: E[ŵ | defined] = {mean}, w(A,B) = {truth}"
            );
        }
    }
}

#[test]
fn induced_weight_undefined_iff_category_unsampled() {
    // Eq. 8's denominator needs both categories present; the estimator
    // must report None (undefined), never 0, in that case.
    let (g, p) = bridge();
    for_all_tuples(6, 2, |nodes| {
        let s = InducedSample::observe(&g, &p, nodes);
        let both = nodes.iter().any(|&v| v <= 2) && nodes.iter().any(|&v| v >= 3);
        assert_eq!(induced_weight(&s, 0, 1).is_some(), both, "tuple {nodes:?}");
    });
}

#[test]
fn star_size_eq5_matches_hand_computed_values() {
    let (g, p) = bridge();
    // Sample S = (1, 2), uniform weights.
    //   f̂_vol(A) = (2 + 2) / (2 + 3) = 4/5;  f̂_vol(B) = 1/5
    //   k̂_V = (2 + 3)/2 = 5/2;  k̂_A = 5/2;  k̂_B undefined (no B sample)
    //   Eq. 5: |Â| = 6 · (4/5) · (5/2)/(5/2) = 24/5
    let s = StarSample::observe(&g, &p, &[1, 2]);
    assert!((relative_volume(&s, 0).unwrap() - 0.8).abs() < 1e-12);
    assert!((relative_volume(&s, 1).unwrap() - 0.2).abs() < 1e-12);
    assert!((mean_degree(&s).unwrap() - 2.5).abs() < 1e-12);
    assert!((mean_degree_in(&s, 0).unwrap() - 2.5).abs() < 1e-12);
    let opts = StarSizeOptions::default();
    assert!((star_size(&s, 0, 6.0, &opts).unwrap() - 4.8).abs() < 1e-12);
    assert_eq!(star_size(&s, 1, 6.0, &opts), None, "k̂_B is undefined");
    // Model-based variant (footnote 4): k̂_B := k̂_V, so
    // |B̂| = 6 · (1/5) · 1 = 6/5.
    let model = StarSizeOptions {
        model_based_mean_degree: true,
    };
    assert!((star_size(&s, 1, 6.0, &model).unwrap() - 1.2).abs() < 1e-12);
}

#[test]
fn star_weight_eq9_matches_hand_computed_values() {
    let (g, p) = bridge();
    // Sample S = (1, 2): S_A = {1, 2}, S_B = ∅.
    //   numerator = |E_{1,B}| + |E_{2,B}| = 0 + 1 = 1
    //   denominator = w⁻¹(S_A)·|B̂| + w⁻¹(S_B)·|Â| = 2·|B̂|
    // With the true |B| = 3: ŵ(A,B) = 1/6.
    let s = StarSample::observe(&g, &p, &[1, 2]);
    let w = star_weight(&s, 0, 1, 3.0, 3.0).unwrap();
    assert!((w - 1.0 / 6.0).abs() < 1e-12, "got {w}");

    // Full sample: every term exact, so Eq. 9 recovers w(A,B) = 1/9
    // exactly: numerator = 2 (the cut edge seen from both sides),
    // denominator = 3·3 + 3·3 = 18.
    let full = StarSample::observe(&g, &p, &[0, 1, 2, 3, 4, 5]);
    let w = star_weight(&full, 0, 1, 3.0, 3.0).unwrap();
    assert!((w - 1.0 / 9.0).abs() < 1e-12, "got {w}");
    let cg = CategoryGraph::exact(&g, &p);
    assert!((w - cg.weight(0, 1)).abs() < 1e-12);
}
