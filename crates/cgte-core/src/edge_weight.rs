//! Category edge weight estimators `ŵ(A,B)` (§4.2 uniform, §5.3 weighted).
//!
//! Both designs estimate Eq. (3) by dividing the (reweighted) number of
//! observed `A`–`B` edges by the (reweighted) maximum number observable.
//! Star sampling also counts edges toward *unsampled* members of the other
//! category, which is why it dominates the induced estimator here
//! (§6.3.3: induced needs 5–10× more samples for the same accuracy).
//!
//! All-pairs estimates are returned as dense [`CategoryMatrix`] values —
//! `C` is tens, so a flat triangle beats pair-keyed hash maps throughout
//! the experiment hot path. Each estimator has two from-equivalent entry
//! points: one over a materialized observation ([`induced_weights_all`],
//! [`star_weights_all`]) and one over incremental accumulator state
//! ([`induced_weights_acc`], [`star_weights_acc`]). The two accumulate in
//! the same order with the same floating-point expressions, so their
//! results are **bit-identical** (property-tested).

use cgte_graph::{CategoryId, CategoryMatrix};
use cgte_sampling::{InducedAccumulator, InducedSample, StarAccumulator, StarSample};

/// Per-category reweighted sizes `w⁻¹(S_c)` in one pass.
fn inv_mass_per_category(cats: &[CategoryId], ws: &[f64], num_c: usize) -> Vec<f64> {
    let mut m = vec![0.0f64; num_c];
    for (&c, &w) in cats.iter().zip(ws) {
        m[c as usize] += 1.0 / w;
    }
    m
}

/// Final division of Eq. (8)/(15): numerators over `w⁻¹(S_A)·w⁻¹(S_B)`.
/// Pairs with empty numerator or vanishing denominator estimate 0.
fn finish_induced_weights(num: &CategoryMatrix, mass: &[f64]) -> CategoryMatrix {
    let mut out = CategoryMatrix::zeros(num.num_categories());
    finish_induced_weights_into(num, mass, &mut out);
    out
}

fn finish_induced_weights_into(num: &CategoryMatrix, mass: &[f64], out: &mut CategoryMatrix) {
    num.map_upper_into(out, |a, b, n| {
        let d = mass[a as usize] * mass[b as usize];
        if a != b && n != 0.0 && d > 0.0 {
            n / d
        } else {
            0.0
        }
    })
}

/// Final division of Eq. (9)/(16): numerators over
/// `w⁻¹(S_A)·|B̂| + w⁻¹(S_B)·|Â|`. Pairs with empty numerator or vanishing
/// denominator estimate 0.
fn finish_star_weights(num: &CategoryMatrix, mass: &[f64], sizes: &[f64]) -> CategoryMatrix {
    let mut out = CategoryMatrix::zeros(num.num_categories());
    finish_star_weights_into(num, mass, sizes, &mut out);
    out
}

fn finish_star_weights_into(
    num: &CategoryMatrix,
    mass: &[f64],
    sizes: &[f64],
    out: &mut CategoryMatrix,
) {
    num.map_upper_into(out, |a, b, n| {
        let d = mass[a as usize] * sizes[b as usize] + mass[b as usize] * sizes[a as usize];
        if a != b && n != 0.0 && d > 0.0 {
            n / d
        } else {
            0.0
        }
    })
}

/// Induced-subgraph estimator of `w(A,B)`: Eq. (8) uniform, Eq. (15)
/// weighted —
/// `ŵ(A,B) = [Σ_{a∈S_A} Σ_{b∈S_B} 1{{a,b}∈E} / (w(a)w(b))] / [w⁻¹(S_A)·w⁻¹(S_B)]`.
///
/// Returns `None` if either category received no samples (the estimator is
/// undefined, not zero). `Some(0.0)` means both categories were sampled but
/// no edge between them was observed.
///
/// # Panics
/// Panics if `a == b` (the category graph has no self-loops).
pub fn induced_weight(sample: &InducedSample, a: CategoryId, b: CategoryId) -> Option<f64> {
    assert_ne!(a, b, "edge weights are defined between distinct categories");
    let cats = sample.categories();
    let ws = sample.weights();
    let mass = inv_mass_per_category(cats, ws, sample.num_categories());
    let denom = mass[a as usize] * mass[b as usize];
    if denom == 0.0 {
        return None;
    }
    let mut num = 0.0;
    for &(i, j) in sample.edges() {
        let (ci, cj) = (cats[i as usize], cats[j as usize]);
        if (ci == a && cj == b) || (ci == b && cj == a) {
            num += 1.0 / (ws[i as usize] * ws[j as usize]);
        }
    }
    Some(num / denom)
}

/// All pairwise induced weight estimates as a dense matrix.
///
/// An entry is non-zero exactly for pairs with at least one observed
/// inter-category edge and a non-vanishing denominator; pairs that are
/// "undefined" (a side unsampled) or merely edge-free both read 0, which is
/// the operational interpretation the NRMSE protocol uses (query
/// [`induced_weight`] for an explicit zero-vs-undefined answer).
///
/// The summation replays [`InducedAccumulator`]'s push order — samples in
/// draw order, each one joined against the aggregated mass of every earlier
/// adjacent node in ascending node-id order — so the result is
/// bit-identical to [`induced_weights_acc`] on the same prefix.
pub fn induced_weights_all(sample: &InducedSample) -> CategoryMatrix {
    let n = sample.len();
    let num_c = sample.num_categories();
    let cats = sample.categories();
    let ws = sample.weights();
    let nodes = sample.nodes();
    let mass = inv_mass_per_category(cats, ws, num_c);
    // Bucket each recorded edge under its larger sample index; edges are
    // stored sorted, so every bucket receives ascending smaller-indices.
    let mut incident: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &(i, j) in sample.edges() {
        incident[j as usize].push(i);
    }
    let mut num = CategoryMatrix::zeros(num_c);
    for i in 0..n {
        let earlier = &mut incident[i];
        if earlier.is_empty() {
            continue;
        }
        // Group the earlier endpoints by node id (ascending, then ascending
        // occurrence), mirroring the accumulator's neighbor scan.
        earlier.sort_unstable_by_key(|&j| (nodes[j as usize], j));
        let ci = cats[i];
        let wi_inv = 1.0 / ws[i];
        let mut k = 0;
        while k < earlier.len() {
            let node = nodes[earlier[k] as usize];
            let cj = cats[earlier[k] as usize];
            let mut m = 0.0;
            while k < earlier.len() && nodes[earlier[k] as usize] == node {
                m += 1.0 / ws[earlier[k] as usize];
                k += 1;
            }
            if cj != ci {
                num.add(ci, cj, wi_inv * m);
            }
        }
    }
    finish_induced_weights(&num, &mass)
}

/// All pairwise induced weight estimates from incremental accumulator
/// state — `O(C²)`, bit-identical to [`induced_weights_all`] over the same
/// observed prefix.
pub fn induced_weights_acc(acc: &InducedAccumulator) -> CategoryMatrix {
    finish_induced_weights(acc.weight_numerators(), acc.per_category_mass())
}

/// Allocation-free [`induced_weights_acc`]: writes into `out`, which must
/// have the accumulator's category count.
pub fn induced_weights_acc_into(acc: &InducedAccumulator, out: &mut CategoryMatrix) {
    finish_induced_weights_into(acc.weight_numerators(), acc.per_category_mass(), out)
}

/// Star estimator of `w(A,B)`: Eq. (9) uniform, Eq. (16) weighted —
/// `ŵ(A,B) = [Σ_{a∈S_A} |E_{a,B}|/w(a) + Σ_{b∈S_B} |E_{b,A}|/w(b)]
///           / [w⁻¹(S_A)·|B̂| + w⁻¹(S_B)·|Â|]`.
///
/// `size_a`/`size_b` are (estimates of) `|A|`/`|B|` — Eq. (4)/(5) or their
/// weighted forms, whichever has smaller variance for the application
/// (§5.3.2). Returns `None` when the denominator vanishes (neither category
/// sampled, or sizes zero).
///
/// # Panics
/// Panics if `a == b`.
pub fn star_weight(
    sample: &StarSample,
    a: CategoryId,
    b: CategoryId,
    size_a: f64,
    size_b: f64,
) -> Option<f64> {
    assert_ne!(a, b, "edge weights are defined between distinct categories");
    let cats = sample.categories();
    let ws = sample.weights();
    let mut num = 0.0;
    let mut mass_a = 0.0;
    let mut mass_b = 0.0;
    for i in 0..sample.len() {
        let c = cats[i];
        let w = ws[i];
        if c == a {
            num += sample.neighbors_in(i, b) as f64 / w;
            mass_a += 1.0 / w;
        } else if c == b {
            num += sample.neighbors_in(i, a) as f64 / w;
            mass_b += 1.0 / w;
        }
    }
    let denom = mass_a * size_b + mass_b * size_a;
    if denom <= 0.0 {
        return None;
    }
    Some(num / denom)
}

/// All pairwise star weight estimates as a dense matrix.
///
/// `sizes[c]` supplies `|Ĉ|` per category (entries may be 0 for categories
/// with unknown size; pairs whose denominator vanishes read 0, as do pairs
/// without observed edges — the same convention as
/// [`induced_weights_all`]).
///
/// Accumulates in [`StarAccumulator`] push order, so the result is
/// bit-identical to [`star_weights_acc`] on the same prefix.
///
/// # Panics
/// Panics unless `sizes` has one entry per category.
pub fn star_weights_all(sample: &StarSample, sizes: &[f64]) -> CategoryMatrix {
    assert_eq!(
        sizes.len(),
        sample.num_categories(),
        "one size per category"
    );
    let num_c = sample.num_categories();
    let cats = sample.categories();
    let ws = sample.weights();
    let mass = inv_mass_per_category(cats, ws, num_c);
    let mut num = CategoryMatrix::zeros(num_c);
    for i in 0..sample.len() {
        let c = cats[i];
        let w = ws[i];
        for &(other, cnt) in sample.neighbor_categories(i) {
            if other == c {
                continue;
            }
            num.add(c, other, cnt as f64 / w);
        }
    }
    finish_star_weights(&num, &mass, sizes)
}

/// All pairwise star weight estimates from incremental accumulator state —
/// `O(C²)`, bit-identical to [`star_weights_all`] over the same observed
/// prefix.
///
/// # Panics
/// Panics unless `sizes` has one entry per category.
pub fn star_weights_acc(acc: &StarAccumulator, sizes: &[f64]) -> CategoryMatrix {
    assert_eq!(sizes.len(), acc.num_categories(), "one size per category");
    finish_star_weights(acc.weight_numerators(), acc.inverse_mass_in(), sizes)
}

/// Allocation-free [`star_weights_acc`]: writes into `out`, which must
/// have the accumulator's category count.
///
/// # Panics
/// Panics unless `sizes` has one entry per category.
pub fn star_weights_acc_into(acc: &StarAccumulator, sizes: &[f64], out: &mut CategoryMatrix) {
    assert_eq!(sizes.len(), acc.num_categories(), "one size per category");
    finish_star_weights_into(acc.weight_numerators(), acc.inverse_mass_in(), sizes, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgte_graph::{CategoryGraph, Graph, GraphBuilder, Partition};
    use cgte_sampling::{NodeSampler, ObservationContext, RandomWalk, UniformIndependence};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture() -> (Graph, Partition) {
        let g =
            GraphBuilder::from_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
                .unwrap();
        let p = Partition::from_assignments(vec![0, 0, 0, 1, 1, 1], 2).unwrap();
        (g, p)
    }

    #[test]
    fn induced_weight_full_sample_is_exact() {
        let (g, p) = fixture();
        let all: Vec<u32> = (0..6).collect();
        let s = InducedSample::observe(&g, &p, &all);
        // Truth: 1 bridge edge / (3*3).
        let w = induced_weight(&s, 0, 1).unwrap();
        assert!((w - 1.0 / 9.0).abs() < 1e-12);
        // Symmetric.
        assert_eq!(induced_weight(&s, 1, 0), induced_weight(&s, 0, 1));
    }

    #[test]
    fn induced_weight_eq8_small_sample() {
        let (g, p) = fixture();
        // S = {2, 3, 4}: S_0 = {2}, S_1 = {3, 4}; observed A-B edges: (2,3).
        let s = InducedSample::observe(&g, &p, &[2, 3, 4]);
        // Eq. (8): 1 / (1*2).
        assert!((induced_weight(&s, 0, 1).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn induced_weight_multiset_counts_repeats() {
        let (g, p) = fixture();
        // Node 2 twice and node 3 once: edge counted twice, |S_0|=2, |S_1|=1.
        let s = InducedSample::observe(&g, &p, &[2, 2, 3]);
        assert!((induced_weight(&s, 0, 1).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn induced_weight_undefined_vs_zero() {
        let (g, p) = fixture();
        // No category-1 samples: undefined.
        let s = InducedSample::observe(&g, &p, &[0, 1]);
        assert_eq!(induced_weight(&s, 0, 1), None);
        // Both sampled, no observed cross edge: zero.
        let s = InducedSample::observe(&g, &p, &[0, 4]);
        assert_eq!(induced_weight(&s, 0, 1), Some(0.0));
    }

    #[test]
    #[should_panic(expected = "distinct categories")]
    fn induced_weight_rejects_self_pair() {
        let (g, p) = fixture();
        let s = InducedSample::observe(&g, &p, &[0]);
        let _ = induced_weight(&s, 0, 0);
    }

    #[test]
    fn induced_weights_all_matches_single() {
        let (g, p) = fixture();
        let s = InducedSample::observe(&g, &p, &[0, 2, 3, 5, 3]);
        let all = induced_weights_all(&s);
        for (a, b, w) in all.iter_nonzero() {
            assert!((w - induced_weight(&s, a, b).unwrap()).abs() < 1e-12);
        }
        assert!(all.get(0, 1) > 0.0, "bridge pair must be present");
    }

    #[test]
    fn star_weight_full_sample_exact_with_true_sizes() {
        let (g, p) = fixture();
        let all: Vec<u32> = (0..6).collect();
        let s = cgte_sampling::StarSample::observe(&g, &p, &all);
        // Numerator: category-0 nodes see 1 neighbor in cat 1 (node 2 -> 3),
        // category-1 nodes see 1 in cat 0; = 2. Denominator: 3*3 + 3*3 = 18.
        let w = star_weight(&s, 0, 1, 3.0, 3.0).unwrap();
        assert!((w - 1.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn star_weight_works_from_one_side_only() {
        let (g, p) = fixture();
        // Only node 2 (cat 0) sampled: star still sees its edge into cat 1.
        let s = cgte_sampling::StarSample::observe(&g, &p, &[2]);
        // Numerator: |E_{2,B}| = 1. Denominator: w⁻¹(S_0)·|B| = 1·3.
        let w = star_weight(&s, 0, 1, 3.0, 3.0).unwrap();
        assert!((w - 1.0 / 3.0).abs() < 1e-12);
        // Induced estimator is undefined on the same draw — star's key win.
        let ind = s.to_induced(&g, &p);
        assert_eq!(induced_weight(&ind, 0, 1), None);
    }

    #[test]
    fn star_weight_none_when_denominator_zero() {
        let (g, p) = fixture();
        let s = cgte_sampling::StarSample::observe(&g, &p, &[0]);
        assert_eq!(star_weight(&s, 0, 1, 0.0, 0.0), None);
    }

    #[test]
    fn star_weights_all_matches_single() {
        let (g, p) = fixture();
        let s = cgte_sampling::StarSample::observe(&g, &p, &[0, 2, 3, 5]);
        let sizes = vec![3.0, 3.0];
        let all = star_weights_all(&s, &sizes);
        assert!(all.count_nonzero() > 0);
        for (a, b, w) in all.iter_nonzero() {
            let single = star_weight(&s, a, b, sizes[a as usize], sizes[b as usize]).unwrap();
            assert!((w - single).abs() < 1e-12);
        }
    }

    #[test]
    fn accumulator_weights_bit_identical_to_from_scratch() {
        let (g, p) = fixture();
        let ctx = ObservationContext::new(&g, &p);
        // A revisiting, weighted draw exercises the multiset paths.
        let nodes = [2u32, 3, 2, 0, 5, 2, 3, 4, 1, 2];
        let weights: Vec<f64> = nodes.iter().map(|&v| g.degree(v) as f64).collect();
        let mut ind_acc = InducedAccumulator::new(2);
        let mut star_acc = StarAccumulator::new(2);
        for (&v, &w) in nodes.iter().zip(&weights) {
            ind_acc.push(&ctx, v, w);
            star_acc.push(&ctx, v, w);
        }
        let ind = InducedSample::observe_with_weights(&g, &p, &nodes, weights.clone());
        let star = cgte_sampling::StarSample::observe_with_weights(&g, &p, &nodes, weights);
        let sizes = vec![3.0, 3.0];
        assert_eq!(induced_weights_all(&ind), induced_weights_acc(&ind_acc));
        assert_eq!(
            star_weights_all(&star, &sizes),
            star_weights_acc(&star_acc, &sizes)
        );
    }

    #[test]
    fn weighted_induced_estimator_corrects_rw_bias() {
        use cgte_graph::generators::{planted_partition, PlantedConfig};
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = PlantedConfig {
            category_sizes: vec![150, 150],
            k: 10,
            alpha: 0.2,
        };
        let pg = planted_partition(&cfg, &mut rng).unwrap();
        let truth = CategoryGraph::exact(&pg.graph, &pg.partition).weight(0, 1);
        let rw = RandomWalk::new().burn_in(300);
        let nodes = rw.sample(&pg.graph, 6000, &mut rng);
        let s = InducedSample::observe_sampler(&pg.graph, &pg.partition, &nodes, &rw);
        let est = induced_weight(&s, 0, 1).unwrap();
        assert!(
            (est - truth).abs() / truth < 0.3,
            "est {est} vs truth {truth}"
        );
    }

    #[test]
    fn star_estimator_converges_faster_than_induced() {
        // The paper's headline: at equal sample size, star beats induced for
        // edge weights. Check mean absolute relative error over replications.
        use cgte_graph::generators::{planted_partition, PlantedConfig};
        let mut rng = StdRng::seed_from_u64(8);
        let cfg = PlantedConfig {
            category_sizes: vec![200, 200],
            k: 10,
            alpha: 0.5,
        };
        let pg = planted_partition(&cfg, &mut rng).unwrap();
        let truth = CategoryGraph::exact(&pg.graph, &pg.partition).weight(0, 1);
        let mut err_star = 0.0;
        let mut err_ind = 0.0;
        let reps = 30;
        for _ in 0..reps {
            let nodes = UniformIndependence.sample(&pg.graph, 60, &mut rng);
            let star = cgte_sampling::StarSample::observe(&pg.graph, &pg.partition, &nodes);
            let ind = InducedSample::observe(&pg.graph, &pg.partition, &nodes);
            if let Some(w) = star_weight(&star, 0, 1, 200.0, 200.0) {
                err_star += (w - truth).abs() / truth;
            }
            err_ind += match induced_weight(&ind, 0, 1) {
                Some(w) => (w - truth).abs() / truth,
                None => 1.0,
            };
        }
        assert!(
            err_star < err_ind,
            "star total error {err_star} should beat induced {err_ind}"
        );
    }
}
