//! Hansen–Hurwitz estimation machinery (Eq. (10), §5.1).
//!
//! A weighted with-replacement sample, where node `v` is drawn with
//! probability `π(v) ∝ w(v)`, estimates a population total
//! `x_tot = Σ_v x(v)` by `x̂_tot = (1/n) Σ_{v∈S} x(v)/π(v)` \[25\]. In
//! practice only the unnormalized weights `w(v)` are known; taking the
//! *ratio* of two such totals cancels the unknown constant (§5.1), which is
//! the form every estimator in this crate uses.

/// The "re-weighted size" `w⁻¹(X) = Σ_{v∈X} 1/w(v)` of a sample multiset
/// (§5.2.1).
///
/// With unit weights this is simply `|X|`.
///
/// # Panics
/// Panics (in debug builds) if a weight is non-positive; samplers never
/// report non-positive weights for nodes they can actually sample.
pub fn reweighted_size(weights: &[f64]) -> f64 {
    debug_assert!(weights.iter().all(|&w| w > 0.0), "weights must be positive");
    weights.iter().map(|&w| 1.0 / w).sum()
}

/// Hansen–Hurwitz estimator of a ratio of two population totals
/// `Σ x(v) / Σ y(v)` from per-sample values and weights:
/// `(Σ_i x_i/w_i) / (Σ_i y_i/w_i)`.
///
/// Returns `None` when the denominator is zero (the ratio is undefined on
/// this sample). The `1/n` factors of Eq. (10) cancel, as does the unknown
/// proportionality constant of the weights.
pub fn hh_ratio<I>(samples: I) -> Option<f64>
where
    I: IntoIterator<Item = (f64, f64, f64)>, // (x, y, w)
{
    let mut num = 0.0;
    let mut den = 0.0;
    for (x, y, w) in samples {
        num += x / w;
        den += y / w;
    }
    if den == 0.0 {
        None
    } else {
        Some(num / den)
    }
}

/// Hansen–Hurwitz estimate of a population *mean* `x̄ = Σ x(v) / N` from a
/// weighted sample: `(Σ x_i/w_i) / (Σ 1/w_i)`.
///
/// This is [`hh_ratio`] with `y ≡ 1`; the paper's `k̂_V` and `k̂_A`
/// (Eq. (6)/(14)) are this estimator applied to degrees.
pub fn hh_mean<I>(samples: I) -> Option<f64>
where
    I: IntoIterator<Item = (f64, f64)>, // (x, w)
{
    hh_ratio(samples.into_iter().map(|(x, w)| (x, 1.0, w)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reweighted_size_unit_weights_is_count() {
        assert_eq!(reweighted_size(&[1.0; 7]), 7.0);
        assert_eq!(reweighted_size(&[]), 0.0);
    }

    #[test]
    fn reweighted_size_inverts_weights() {
        let w = [2.0, 4.0];
        assert!((reweighted_size(&w) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn hh_ratio_cancels_weight_scale() {
        let samples = [(1.0, 2.0, 3.0), (4.0, 5.0, 6.0)];
        let r1 = hh_ratio(samples.iter().copied()).unwrap();
        let scaled: Vec<_> = samples.iter().map(|&(x, y, w)| (x, y, 10.0 * w)).collect();
        let r2 = hh_ratio(scaled).unwrap();
        assert!((r1 - r2).abs() < 1e-12);
    }

    #[test]
    fn hh_ratio_empty_or_zero_denominator_is_none() {
        assert_eq!(hh_ratio(std::iter::empty()), None);
        assert_eq!(hh_ratio([(1.0, 0.0, 1.0)]), None);
    }

    #[test]
    fn hh_mean_uniform_weights_is_plain_mean() {
        let m = hh_mean([(2.0, 1.0), (4.0, 1.0), (9.0, 1.0)]).unwrap();
        assert!((m - 5.0).abs() < 1e-12);
    }

    #[test]
    fn hh_mean_corrects_oversampling() {
        // Population {10, 20}; node with value 20 sampled 4x as often
        // (weight 4). Sample frequencies at stationarity: one draw of each
        // value per (1,4) weights. The HH mean must return the true mean 15
        // given a perfectly representative weighted sample.
        // Representative sample: value 10 once (w=1), value 20 four times (w=4).
        let samples = [
            (10.0, 1.0),
            (20.0, 4.0),
            (20.0, 4.0),
            (20.0, 4.0),
            (20.0, 4.0),
        ];
        let m = hh_mean(samples).unwrap();
        assert!((m - 15.0).abs() < 1e-12, "got {m}");
    }
}
