//! One-call estimation of the whole category graph (§7.2).

use crate::category_size::{induced_sizes, star_sizes, StarSizeOptions};
use crate::edge_weight::{induced_weights_all, star_weights_all};
use cgte_graph::CategoryGraph;
use cgte_sampling::{InducedSample, StarSample};

/// Which estimator family to use — uniform (§4) or Hansen–Hurwitz weighted
/// (§5).
///
/// `Uniform` *ignores* the weights recorded in the sample and treats every
/// draw as equally likely (correct for UIS and converged MHRW); `Weighted`
/// divides by the recorded `w(v)` (correct for WIS, RW, S-WRW). Applying
/// `Uniform` to a degree-biased sample reproduces the uncorrected distortion
/// the paper warns about in §5 — useful for demonstrations, wrong for
/// inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Design {
    /// Treat the sample as uniform (unit weights).
    Uniform,
    /// Correct for the recorded sampling weights (default).
    #[default]
    Weighted,
}

/// Which size estimator feeds the star edge-weight denominator (§5.3.2
/// recommends choosing the lower-variance one per application).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeMethod {
    /// Counting estimator, Eq. (4)/(11).
    Induced,
    /// Star estimator, Eq. (5)/(12), with its options.
    Star(StarSizeOptions),
}

/// Estimates a full [`CategoryGraph`] — all category sizes and all pairwise
/// edge weights — from one observed sample.
///
/// ```
/// use cgte_core::{CategoryGraphEstimator, Design};
/// use cgte_graph::{GraphBuilder, Partition, CategoryGraph};
/// use cgte_sampling::StarSample;
///
/// let g = GraphBuilder::from_edges(6,
///     [(0,1),(1,2),(0,2),(3,4),(4,5),(3,5),(2,3)]).unwrap();
/// let p = Partition::from_assignments(vec![0,0,0,1,1,1], 2).unwrap();
/// let full: Vec<u32> = (0..6).collect();
/// let s = StarSample::observe(&g, &p, &full);
/// let est = CategoryGraphEstimator::new(Design::Uniform).estimate_star(&s, 6.0);
/// let truth = CategoryGraph::exact(&g, &p);
/// assert!((est.weight(0, 1) - truth.weight(0, 1)).abs() < 1e-9);
/// ```
///
/// All-pairs weights flow through dense [`cgte_graph::CategoryMatrix`]
/// values end to end — no pair-keyed hash maps anywhere on this path.
#[derive(Debug, Clone, Copy)]
pub struct CategoryGraphEstimator {
    design: Design,
    size_method: SizeMethod,
}

impl CategoryGraphEstimator {
    /// Estimator with the given design and the star size method (the §7.3.3
    /// default for star data).
    pub fn new(design: Design) -> Self {
        CategoryGraphEstimator {
            design,
            size_method: SizeMethod::Star(StarSizeOptions::default()),
        }
    }

    /// Overrides the size estimator feeding the edge-weight denominators.
    pub fn size_method(mut self, m: SizeMethod) -> Self {
        self.size_method = m;
        self
    }

    /// The configured design.
    pub fn design(&self) -> Design {
        self.design
    }

    /// Estimates the category graph from an induced-subgraph observation:
    /// sizes via Eq. (4)/(11) (the only size estimator available without
    /// star information), weights via Eq. (8)/(15).
    ///
    /// Categories without samples get size 0; category pairs without
    /// observed edges get no edge.
    pub fn estimate_induced(&self, sample: &InducedSample, population: f64) -> CategoryGraph {
        let s_owned;
        let s = match self.design {
            Design::Uniform => {
                s_owned = sample.with_unit_weights();
                &s_owned
            }
            Design::Weighted => sample,
        };
        let sizes = induced_sizes(s, population).unwrap_or_else(|| vec![0.0; s.num_categories()]);
        let weights = induced_weights_all(s);
        CategoryGraph::from_weights(sizes, weights)
    }

    /// Estimates the category graph from a star observation: sizes via the
    /// configured [`SizeMethod`], weights via Eq. (9)/(16) with those sizes
    /// plugged into the denominators.
    ///
    /// Categories whose size estimator is undefined (e.g. star plug-in with
    /// no samples from the category) fall back to the induced size; if that
    /// is also unavailable the size is 0 and incident edges are dropped.
    pub fn estimate_star(&self, sample: &StarSample, population: f64) -> CategoryGraph {
        let s_owned;
        let s = match self.design {
            Design::Uniform => {
                s_owned = sample.with_unit_weights();
                &s_owned
            }
            Design::Weighted => sample,
        };
        let num_c = s.num_categories();
        let fallback = induced_sizes(s, population).unwrap_or_else(|| vec![0.0; num_c]);
        let sizes: Vec<f64> = match self.size_method {
            SizeMethod::Induced => fallback,
            SizeMethod::Star(opts) => star_sizes(s, population, &opts)
                .into_iter()
                .zip(fallback)
                .map(|(star, ind)| star.unwrap_or(ind))
                .collect(),
        };
        let weights = star_weights_all(s, &sizes);
        CategoryGraph::from_weights(sizes, weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgte_graph::generators::{planted_partition, PlantedConfig};
    use cgte_graph::{Graph, GraphBuilder, Partition};
    use cgte_sampling::{NodeSampler, RandomWalk, UniformIndependence};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture() -> (Graph, Partition) {
        let g =
            GraphBuilder::from_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
                .unwrap();
        let p = Partition::from_assignments(vec![0, 0, 0, 1, 1, 1], 2).unwrap();
        (g, p)
    }

    #[test]
    fn full_uniform_sample_recovers_truth_induced() {
        let (g, p) = fixture();
        let all: Vec<u32> = (0..6).collect();
        let s = cgte_sampling::InducedSample::observe(&g, &p, &all);
        let est = CategoryGraphEstimator::new(Design::Uniform).estimate_induced(&s, 6.0);
        let truth = cgte_graph::CategoryGraph::exact(&g, &p);
        assert!((est.size(0) - 3.0).abs() < 1e-9);
        assert!((est.weight(0, 1) - truth.weight(0, 1)).abs() < 1e-9);
    }

    #[test]
    fn full_uniform_sample_recovers_truth_star() {
        let (g, p) = fixture();
        let all: Vec<u32> = (0..6).collect();
        let s = cgte_sampling::StarSample::observe(&g, &p, &all);
        for method in [
            SizeMethod::Induced,
            SizeMethod::Star(StarSizeOptions::default()),
        ] {
            let est = CategoryGraphEstimator::new(Design::Uniform)
                .size_method(method)
                .estimate_star(&s, 6.0);
            assert!((est.size(1) - 3.0).abs() < 1e-9, "{method:?}");
            assert!((est.weight(0, 1) - 1.0 / 9.0).abs() < 1e-9, "{method:?}");
        }
    }

    #[test]
    fn unsampled_categories_get_zero_size_and_no_edges() {
        let (g, p) = fixture();
        let s = cgte_sampling::InducedSample::observe(&g, &p, &[0, 1]);
        let est = CategoryGraphEstimator::new(Design::Uniform).estimate_induced(&s, 6.0);
        assert_eq!(est.size(1), 0.0);
        assert_eq!(est.num_edges(), 0);
    }

    #[test]
    fn star_fallback_to_induced_size() {
        let (g, p) = fixture();
        // Category 1 never sampled: star plug-in size undefined, induced
        // fallback gives 0; the edge is dropped (denominator would be
        // mass_0 * 0 + 0 * size_0 = 0).
        let s = cgte_sampling::StarSample::observe(&g, &p, &[0, 1]);
        let est = CategoryGraphEstimator::new(Design::Uniform).estimate_star(&s, 6.0);
        assert_eq!(est.size(1), 0.0);
    }

    #[test]
    fn weighted_design_beats_uncorrected_on_rw() {
        // RW without correction inflates big/high-degree categories; the
        // Weighted design must be closer to the truth than Uniform on the
        // same degree-biased sample.
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = PlantedConfig {
            category_sizes: vec![60, 540],
            k: 6,
            alpha: 0.1,
        };
        let pg = planted_partition(&cfg, &mut rng).unwrap();
        let rw = RandomWalk::new().burn_in(300);
        let nodes = rw.sample(&pg.graph, 5000, &mut rng);
        let s = cgte_sampling::StarSample::observe_sampler(&pg.graph, &pg.partition, &nodes, &rw);
        let n = pg.graph.num_nodes() as f64;
        let corrected = CategoryGraphEstimator::new(Design::Weighted).estimate_star(&s, n);
        let uncorrected = CategoryGraphEstimator::new(Design::Uniform).estimate_star(&s, n);
        let err_c = (corrected.size(0) - 60.0).abs();
        let err_u = (uncorrected.size(0) - 60.0).abs();
        // Note: sizes are mildly biased either way on one draw; compare errors.
        assert!(
            err_c <= err_u + 5.0,
            "corrected {err_c} should not be worse than uncorrected {err_u}"
        );
    }

    #[test]
    fn estimated_graph_close_to_truth_at_scale() {
        let mut rng = StdRng::seed_from_u64(12);
        let cfg = PlantedConfig {
            category_sizes: vec![100, 200, 400],
            k: 10,
            alpha: 0.4,
        };
        let pg = planted_partition(&cfg, &mut rng).unwrap();
        let truth = cgte_graph::CategoryGraph::exact(&pg.graph, &pg.partition);
        let nodes = UniformIndependence.sample(&pg.graph, 3000, &mut rng);
        let s = cgte_sampling::StarSample::observe(&pg.graph, &pg.partition, &nodes);
        let est = CategoryGraphEstimator::new(Design::Uniform)
            .estimate_star(&s, pg.graph.num_nodes() as f64);
        for a in 0..3u32 {
            for b in (a + 1)..3u32 {
                let t = truth.weight(a, b);
                let e = est.weight(a, b);
                assert!(
                    (e - t).abs() / t < 0.2,
                    "pair ({a},{b}): est {e} vs truth {t}"
                );
            }
        }
    }
}
