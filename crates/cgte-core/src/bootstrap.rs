//! Bootstrap variance and confidence intervals (§5.3.2, the paper's \[9\]).
//!
//! The paper recommends choosing between size estimators by their variance,
//! "estimated, e.g., using bootstrapping". Observations are resampled with
//! replacement at the record level; induced edges are re-derived from the
//! recorded ones, so no graph access is needed.

use cgte_sampling::{InducedSample, StarSample};
use rand::Rng;

/// Summary of a bootstrap distribution of an estimator.
#[derive(Debug, Clone, PartialEq)]
pub struct BootstrapSummary {
    /// Number of replicates on which the estimator was defined.
    pub replicates: usize,
    /// Mean of the defined replicate estimates.
    pub mean: f64,
    /// Sample standard deviation of the replicate estimates.
    pub std_dev: f64,
    /// Percentile confidence interval (lower, upper).
    pub ci: (f64, f64),
    /// The confidence level the interval was computed at.
    pub level: f64,
}

fn summarize(mut estimates: Vec<f64>, level: f64) -> Option<BootstrapSummary> {
    if estimates.is_empty() {
        return None;
    }
    estimates.sort_by(|a, b| a.partial_cmp(b).expect("finite estimates"));
    let n = estimates.len();
    let mean = estimates.iter().sum::<f64>() / n as f64;
    let var = if n > 1 {
        estimates.iter().map(|e| (e - mean).powi(2)).sum::<f64>() / (n - 1) as f64
    } else {
        0.0
    };
    let tail = (1.0 - level) / 2.0;
    let lo_idx = ((n as f64 - 1.0) * tail).round() as usize;
    let hi_idx = ((n as f64 - 1.0) * (1.0 - tail)).round() as usize;
    Some(BootstrapSummary {
        replicates: n,
        mean,
        std_dev: var.sqrt(),
        ci: (estimates[lo_idx], estimates[hi_idx]),
        level,
    })
}

fn resample_indices<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<u32> {
    (0..n).map(|_| rng.gen_range(0..n as u32)).collect()
}

/// Bootstraps an estimator over a [`StarSample`].
///
/// Runs `reps` record-level resamples and applies `estimator` to each;
/// replicates where the estimator is undefined (`None`) are dropped.
/// Returns `None` if the sample is empty, `reps == 0`, or the estimator was
/// undefined on every replicate.
///
/// # Panics
/// Panics if `level` is not in `(0, 1)`.
pub fn bootstrap_star<R, F>(
    sample: &StarSample,
    reps: usize,
    level: f64,
    rng: &mut R,
    estimator: F,
) -> Option<BootstrapSummary>
where
    R: Rng + ?Sized,
    F: Fn(&StarSample) -> Option<f64>,
{
    assert!(
        level > 0.0 && level < 1.0,
        "confidence level must be in (0,1)"
    );
    if sample.is_empty() || reps == 0 {
        return None;
    }
    let estimates: Vec<f64> = (0..reps)
        .filter_map(|_| {
            let idx = resample_indices(sample.len(), rng);
            estimator(&sample.subsample(&idx))
        })
        .collect();
    summarize(estimates, level)
}

/// Bootstraps an estimator over an [`InducedSample`]; see [`bootstrap_star`].
///
/// # Panics
/// Panics if `level` is not in `(0, 1)`.
pub fn bootstrap_induced<R, F>(
    sample: &InducedSample,
    reps: usize,
    level: f64,
    rng: &mut R,
    estimator: F,
) -> Option<BootstrapSummary>
where
    R: Rng + ?Sized,
    F: Fn(&InducedSample) -> Option<f64>,
{
    assert!(
        level > 0.0 && level < 1.0,
        "confidence level must be in (0,1)"
    );
    if sample.is_empty() || reps == 0 {
        return None;
    }
    let estimates: Vec<f64> = (0..reps)
        .filter_map(|_| {
            let idx = resample_indices(sample.len(), rng);
            estimator(&sample.subsample(&idx))
        })
        .collect();
    summarize(estimates, level)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::category_size::{induced_size, star_size, StarSizeOptions};
    use cgte_graph::generators::{planted_partition, PlantedConfig};
    use cgte_sampling::{NodeSampler, UniformIndependence};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (cgte_graph::Graph, cgte_graph::Partition, StdRng) {
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = PlantedConfig {
            category_sizes: vec![100, 300],
            k: 6,
            alpha: 0.3,
        };
        let pg = planted_partition(&cfg, &mut rng).unwrap();
        (pg.graph, pg.partition, rng)
    }

    #[test]
    fn ci_brackets_truth_most_of_the_time() {
        let (g, p, mut rng) = setup();
        let nodes = UniformIndependence.sample(&g, 800, &mut rng);
        let s = cgte_sampling::StarSample::observe(&g, &p, &nodes);
        let sum = bootstrap_star(&s, 200, 0.95, &mut rng, |s| {
            star_size(s, 0, 400.0, &StarSizeOptions::default())
        })
        .unwrap();
        assert!(sum.replicates > 150);
        assert!(sum.std_dev > 0.0);
        assert!(
            sum.ci.0 <= 100.0 + 3.0 * sum.std_dev && sum.ci.1 >= 100.0 - 3.0 * sum.std_dev,
            "CI {:?} too far from truth 100",
            sum.ci
        );
        assert!(sum.ci.0 <= sum.mean && sum.mean <= sum.ci.1);
    }

    #[test]
    fn induced_bootstrap_runs() {
        let (g, p, mut rng) = setup();
        let nodes = UniformIndependence.sample(&g, 400, &mut rng);
        let s = cgte_sampling::InducedSample::observe(&g, &p, &nodes);
        let sum = bootstrap_induced(&s, 100, 0.9, &mut rng, |s| induced_size(s, 1, 400.0)).unwrap();
        assert_eq!(sum.level, 0.9);
        assert!((sum.mean - 300.0).abs() < 60.0, "mean {}", sum.mean);
    }

    #[test]
    fn empty_sample_or_zero_reps_is_none() {
        let (g, p, mut rng) = setup();
        let s = cgte_sampling::StarSample::observe(&g, &p, &[]);
        assert!(bootstrap_star(&s, 10, 0.95, &mut rng, |_| Some(1.0)).is_none());
        let nodes = UniformIndependence.sample(&g, 10, &mut rng);
        let s = cgte_sampling::StarSample::observe(&g, &p, &nodes);
        assert!(bootstrap_star(&s, 0, 0.95, &mut rng, |_| Some(1.0)).is_none());
    }

    #[test]
    fn all_undefined_replicates_is_none() {
        let (g, p, mut rng) = setup();
        let nodes = UniformIndependence.sample(&g, 10, &mut rng);
        let s = cgte_sampling::StarSample::observe(&g, &p, &nodes);
        assert!(bootstrap_star(&s, 50, 0.95, &mut rng, |_| None).is_none());
    }

    #[test]
    #[should_panic(expected = "confidence level")]
    fn invalid_level_panics() {
        let (g, p, mut rng) = setup();
        let nodes = UniformIndependence.sample(&g, 10, &mut rng);
        let s = cgte_sampling::StarSample::observe(&g, &p, &nodes);
        let _ = bootstrap_star(&s, 10, 1.5, &mut rng, |_| Some(1.0));
    }

    #[test]
    fn constant_estimator_has_zero_variance() {
        let (g, p, mut rng) = setup();
        let nodes = UniformIndependence.sample(&g, 20, &mut rng);
        let s = cgte_sampling::StarSample::observe(&g, &p, &nodes);
        let sum = bootstrap_star(&s, 30, 0.95, &mut rng, |_| Some(7.0)).unwrap();
        assert_eq!(sum.mean, 7.0);
        assert_eq!(sum.std_dev, 0.0);
        assert_eq!(sum.ci, (7.0, 7.0));
    }
}
