//! Local-property estimators from node samples (§1, §8 context).
//!
//! The paper builds on the established fact that probability samples of
//! nodes estimate *local* graph properties well — "node attribute
//! frequency, degree distribution, degree-degree correlations, or
//! clustering coefficients" (§1) — and contributes the coarse-grained
//! *topology* estimators on top. This module supplies the standard local
//! estimators for completeness, in the same design-based (Hansen–Hurwitz)
//! style, so a downstream user can characterize a crawled graph end to end.

use crate::category_size::Records;
use crate::hansen_hurwitz::{hh_mean, reweighted_size};
use std::collections::HashMap;

/// Estimates the degree distribution `P(deg = k)` from a weighted sample:
/// each sample contributes `1/w(v)` mass to its degree bucket, normalized
/// by `w⁻¹(S)`.
///
/// With unit weights this is the empirical histogram; with RW weights
/// (`w(v) = deg(v)`) it corrects the classic degree bias of crawls.
/// Returns `None` on an empty sample.
pub fn degree_distribution<S: Records + ?Sized>(sample: &S) -> Option<HashMap<u32, f64>> {
    let ws = sample.rec_weights();
    if ws.is_empty() {
        return None;
    }
    let total = reweighted_size(ws);
    let mut dist: HashMap<u32, f64> = HashMap::new();
    for (&d, &w) in sample.rec_degrees().iter().zip(ws) {
        *dist.entry(d).or_insert(0.0) += 1.0 / w;
    }
    for v in dist.values_mut() {
        *v /= total;
    }
    Some(dist)
}

/// Estimates the mean degree `k_V` — an alias of the paper's `k̂_V`
/// (Eq. (6)/(14)), re-exported here next to the other local properties.
pub fn mean_degree<S: Records + ?Sized>(sample: &S) -> Option<f64> {
    crate::category_size::mean_degree(sample)
}

/// Estimates the frequency of an arbitrary node attribute from a weighted
/// sample: `Σ_{v∈S, pred(v)} 1/w(v) / w⁻¹(S)`.
///
/// `pred(i)` decides per *sample index*, so any recorded field (category,
/// degree threshold, …) can back it. Returns `None` on an empty sample.
pub fn attribute_frequency<S, F>(sample: &S, pred: F) -> Option<f64>
where
    S: Records + ?Sized,
    F: Fn(usize) -> bool,
{
    let ws = sample.rec_weights();
    if ws.is_empty() {
        return None;
    }
    let num: f64 = ws
        .iter()
        .enumerate()
        .filter(|(i, _)| pred(*i))
        .map(|(_, &w)| 1.0 / w)
        .sum();
    Some(num / reweighted_size(ws))
}

/// Estimates `E[f(deg)]` for an arbitrary function of the degree, e.g.
/// higher moments: `hh_mean` over `f(deg(v))`.
pub fn degree_functional<S, F>(sample: &S, f: F) -> Option<f64>
where
    S: Records + ?Sized,
    F: Fn(u32) -> f64,
{
    hh_mean(
        sample
            .rec_degrees()
            .iter()
            .zip(sample.rec_weights())
            .map(|(&d, &w)| (f(d), w)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgte_graph::generators::{planted_partition, PlantedConfig};
    use cgte_graph::{GraphBuilder, Partition};
    use cgte_sampling::{InducedSample, NodeSampler, RandomWalk};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn degree_distribution_sums_to_one() {
        let g = GraphBuilder::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let p = Partition::trivial(4);
        let s = InducedSample::observe(&g, &p, &[0, 1, 2, 3]);
        let dist = degree_distribution(&s).unwrap();
        let total: f64 = dist.values().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((dist[&1] - 0.5).abs() < 1e-12);
        assert!((dist[&2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_sample_returns_none() {
        let g = GraphBuilder::new(2).build();
        let p = Partition::trivial(2);
        let s = InducedSample::observe(&g, &p, &[]);
        assert!(degree_distribution(&s).is_none());
        assert!(attribute_frequency(&s, |_| true).is_none());
    }

    #[test]
    fn rw_corrected_degree_distribution_matches_truth() {
        // The classic result our Eq. (10) machinery reproduces: an
        // uncorrected RW sample overestimates high degrees; the HH-weighted
        // histogram recovers the truth.
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = PlantedConfig {
            category_sizes: vec![300, 300],
            k: 4,
            alpha: 0.5,
        };
        let pg = planted_partition(&cfg, &mut rng).unwrap();
        let rw = RandomWalk::new().burn_in(500);
        let nodes = rw.sample(&pg.graph, 20_000, &mut rng);
        let s = InducedSample::observe_sampler(&pg.graph, &pg.partition, &nodes, &rw);
        let est = degree_distribution(&s).unwrap();
        // Truth.
        let mut truth: HashMap<u32, f64> = HashMap::new();
        for v in 0..pg.graph.num_nodes() {
            *truth.entry(pg.graph.degree(v as u32) as u32).or_insert(0.0) +=
                1.0 / pg.graph.num_nodes() as f64;
        }
        for (k, &t) in &truth {
            if t > 0.05 {
                let e = est.get(k).copied().unwrap_or(0.0);
                assert!((e - t).abs() < 0.05, "P(deg={k}): est {e} vs truth {t}");
            }
        }
        // Uncorrected comparison: the unit-weight histogram of the same
        // draw must overweight the higher-degree bucket.
        let naive = degree_distribution(&s.with_unit_weights()).unwrap();
        let mean_est: f64 = est.iter().map(|(&k, &p)| k as f64 * p).sum();
        let mean_naive: f64 = naive.iter().map(|(&k, &p)| k as f64 * p).sum();
        assert!(
            mean_naive > mean_est,
            "uncorrected mean {mean_naive} should exceed corrected {mean_est}"
        );
    }

    #[test]
    fn attribute_frequency_equals_size_fraction() {
        let g = GraphBuilder::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let p = Partition::from_assignments(vec![0, 0, 1, 1], 2).unwrap();
        let s = InducedSample::observe(&g, &p, &[0, 1, 2, 3]);
        let f = attribute_frequency(&s, |i| s.categories()[i] == 1).unwrap();
        assert!((f - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degree_functional_second_moment() {
        let g = GraphBuilder::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let p = Partition::trivial(3);
        let s = InducedSample::observe(&g, &p, &[0, 1, 2]);
        // Degrees 1, 2, 1: E[d^2] = (1 + 4 + 1)/3 = 2.
        let m2 = degree_functional(&s, |d| (d as f64).powi(2)).unwrap();
        assert!((m2 - 2.0).abs() < 1e-12);
        assert!((mean_degree(&s).unwrap() - 4.0 / 3.0).abs() < 1e-12);
    }
}
