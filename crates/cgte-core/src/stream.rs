//! Estimates over the streaming observation kernel
//! ([`cgte_sampling::ObservationStream`]).
//!
//! One function — [`estimate_stream_into`] — turns the kernel's sufficient
//! statistics into every estimator family of the paper at the current
//! prefix. The batch experiment runner (`cgte_eval::run_experiment`) and
//! the online service (`cgte-serve`) both call it, which is what makes a
//! serve session fed the same sampled sequence **bit-identical** to the
//! batch path: there is only one snapshot computation to agree with.

use crate::category_size::{induced_sizes_acc_into, star_sizes_acc_into, StarSizeOptions};
use crate::edge_weight::{induced_weights_acc_into, star_weights_acc_into};
use cgte_graph::CategoryMatrix;
use cgte_sampling::{InducedAccumulator, ObservationStream, StarAccumulator};

/// A full snapshot of both estimator families at one prefix, with reusable
/// buffers ("cheap `snapshot_into`"): construct once, re-fill per prefix.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamEstimate {
    /// The population size `N` the sizes were scaled by.
    pub population: f64,
    /// Number of ingested samples at this snapshot.
    pub len: usize,
    /// Whether the induced size estimator was defined (non-empty sample);
    /// when `false`, `sizes_induced` holds the operational all-zeros
    /// reading.
    pub induced_defined: bool,
    /// Induced (counting) size estimates, Eq. (4)/(11), one per category.
    pub sizes_induced: Vec<f64>,
    /// Star size estimates, Eq. (5)/(12); `None` where undefined.
    pub sizes_star: Vec<Option<f64>>,
    /// The §5.3.2 plug-in sizes the star weight estimator uses: star size
    /// with induced fallback per category.
    pub plug_sizes: Vec<f64>,
    /// Whether the weight matrices below were computed at this snapshot.
    pub with_weights: bool,
    /// Induced edge-weight estimates, Eq. (8)/(15); zeros when
    /// `with_weights` is false.
    pub weights_induced: CategoryMatrix,
    /// Star edge-weight estimates, Eq. (9)/(16) with plug-in sizes; zeros
    /// when `with_weights` is false.
    pub weights_star: CategoryMatrix,
}

impl StreamEstimate {
    /// An empty snapshot buffer over `num_categories` categories.
    pub fn new(num_categories: usize) -> Self {
        StreamEstimate {
            population: 0.0,
            len: 0,
            induced_defined: false,
            sizes_induced: Vec::with_capacity(num_categories),
            sizes_star: Vec::with_capacity(num_categories),
            plug_sizes: Vec::with_capacity(num_categories),
            with_weights: false,
            weights_induced: CategoryMatrix::zeros(num_categories),
            weights_star: CategoryMatrix::zeros(num_categories),
        }
    }

    /// Number of categories this buffer snapshots.
    pub fn num_categories(&self) -> usize {
        self.weights_induced.num_categories()
    }
}

/// Snapshots both estimator families from raw accumulator state into a
/// reusable [`StreamEstimate`] buffer.
///
/// The computation — induced sizes (all-zeros when undefined), star sizes,
/// plug-in sizes (star with induced fallback), then optionally both weight
/// matrices — replays the batch experiment runner's snapshot expression
/// for expression, so the two paths agree bit for bit. `with_weights`
/// skips the `O(C²)` weight work for size-only consumers.
///
/// # Panics
/// Panics if `out`'s category count differs from the accumulators'.
pub fn estimate_stream_into(
    star: &StarAccumulator,
    induced: &InducedAccumulator,
    population: f64,
    opts: &StarSizeOptions,
    with_weights: bool,
    out: &mut StreamEstimate,
) {
    assert_eq!(
        out.num_categories(),
        star.num_categories(),
        "snapshot buffer dimension mismatch"
    );
    out.population = population;
    out.len = star.len();
    out.induced_defined = induced_sizes_acc_into(induced, population, &mut out.sizes_induced);
    star_sizes_acc_into(star, population, opts, &mut out.sizes_star);
    out.with_weights = with_weights;
    if with_weights {
        // Star edge weights plug in the star size with induced fallback
        // (§5.3.2: pick the better-behaved size estimator).
        out.plug_sizes.clear();
        out.plug_sizes.extend(
            out.sizes_star
                .iter()
                .zip(&out.sizes_induced)
                .map(|(s, &i)| s.unwrap_or(i)),
        );
        induced_weights_acc_into(induced, &mut out.weights_induced);
        star_weights_acc_into(star, &out.plug_sizes, &mut out.weights_star);
    } else {
        out.plug_sizes.clear();
        out.weights_induced.reset();
        out.weights_star.reset();
    }
}

/// Allocating convenience over [`estimate_stream_into`] for one-shot
/// consumers: a full snapshot (sizes and weights) of a stream.
pub fn estimate_stream(
    stream: &ObservationStream,
    population: f64,
    opts: &StarSizeOptions,
) -> StreamEstimate {
    let mut out = StreamEstimate::new(stream.num_categories());
    estimate_stream_into(
        stream.star(),
        stream.induced(),
        population,
        opts,
        true,
        &mut out,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::category_size::{induced_sizes_acc, star_sizes_acc};
    use crate::edge_weight::{induced_weights_acc, star_weights_acc};
    use cgte_graph::{Graph, GraphBuilder, Partition};
    use cgte_sampling::ObservationContext;

    fn fixture() -> (Graph, Partition) {
        let g =
            GraphBuilder::from_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
                .unwrap();
        let p = Partition::from_assignments(vec![0, 0, 0, 1, 1, 1], 2).unwrap();
        (g, p)
    }

    #[test]
    fn snapshot_matches_allocating_estimators_bitwise() {
        let (g, p) = fixture();
        let ctx = ObservationContext::new(&g, &p);
        let mut stream = ObservationStream::new(2);
        for &(v, w) in &[(2u32, 3.0), (3, 3.0), (0, 2.0), (5, 2.0), (2, 3.0)] {
            stream.push(&ctx, v, w);
        }
        let opts = StarSizeOptions::default();
        let est = estimate_stream(&stream, 6.0, &opts);
        assert_eq!(est.len, 5);
        assert_eq!(
            est.sizes_induced,
            induced_sizes_acc(stream.induced(), 6.0).unwrap()
        );
        assert_eq!(est.sizes_star, star_sizes_acc(stream.star(), 6.0, &opts));
        assert_eq!(est.weights_induced, induced_weights_acc(stream.induced()));
        assert_eq!(
            est.weights_star,
            star_weights_acc(stream.star(), &est.plug_sizes)
        );
    }

    #[test]
    fn empty_stream_is_the_operational_zero_reading() {
        let stream = ObservationStream::new(3);
        let est = estimate_stream(&stream, 10.0, &StarSizeOptions::default());
        assert!(!est.induced_defined);
        assert_eq!(est.sizes_induced, vec![0.0; 3]);
        assert_eq!(est.sizes_star, vec![None; 3]);
        assert!(est.weights_induced.is_zero());
        assert!(est.weights_star.is_zero());
    }

    #[test]
    fn size_only_snapshot_skips_weights() {
        let (g, p) = fixture();
        let ctx = ObservationContext::new(&g, &p);
        let mut stream = ObservationStream::new(2);
        stream.ingest_uniform(&ctx, &[2, 3]);
        let mut out = StreamEstimate::new(2);
        estimate_stream_into(
            stream.star(),
            stream.induced(),
            6.0,
            &StarSizeOptions::default(),
            false,
            &mut out,
        );
        assert!(!out.with_weights);
        assert!(out.weights_induced.is_zero());
        // Re-filling the same buffer with weights works (snapshot reuse).
        estimate_stream_into(
            stream.star(),
            stream.induced(),
            6.0,
            &StarSizeOptions::default(),
            true,
            &mut out,
        );
        assert!(out.with_weights);
        assert!(out.weights_induced.get(0, 1) > 0.0);
    }
}
