//! Population size estimation (§4.3).
//!
//! Category size estimation needs `N = |V|`. When the operator does not
//! publish it, `N` can be estimated from sample collisions — the "reversed
//! coupon collector" of the paper's \[33\] (Katzir, Liberty & Somekh,
//! WWW'11): in a with-replacement sample, the same node reappearing is
//! evidence about the population size.
//!
//! For a degree-weighted sample (RW/WIS), the estimator is
//! `N̂ = (Σ_i d_i)(Σ_i 1/d_i) / (2·C)`, where `C` is the number of
//! colliding sample pairs; under uniform sampling the degree sums cancel
//! into the birthday-paradox form `N̂ = n(n−1)/(2·C)`.

use cgte_graph::NodeId;
use std::collections::HashMap;

/// Number of colliding pairs in a multiset of node ids:
/// `C = Σ_v (m_v choose 2)` over the multiplicity `m_v` of each node.
pub fn collision_pairs(nodes: &[NodeId]) -> u64 {
    let mut mult: HashMap<NodeId, u64> = HashMap::new();
    for &v in nodes {
        *mult.entry(v).or_insert(0) += 1;
    }
    mult.values().map(|&m| m * (m - 1) / 2).sum()
}

/// Birthday-paradox estimator of `N` for a **uniform** with-replacement
/// sample: `N̂ = n(n−1) / (2·C)`.
///
/// Returns `None` when no collision occurred (the sample carries no
/// information about `N` yet — try a larger sample).
pub fn population_size_uniform(nodes: &[NodeId]) -> Option<f64> {
    let n = nodes.len() as f64;
    let c = collision_pairs(nodes);
    if c == 0 {
        return None;
    }
    Some(n * (n - 1.0) / (2.0 * c as f64))
}

/// Katzir-style estimator of `N` for a **degree-weighted** with-replacement
/// sample (RW at stationarity, or degree-proportional WIS):
/// `N̂ = (Σ_i d_i)(Σ_i 1/d_i) / (2·C)`.
///
/// `degrees[i]` is the degree of the i-th sample. Returns `None` when no
/// collision occurred or the inputs are degenerate (mismatched lengths,
/// zero degrees).
pub fn population_size_weighted(nodes: &[NodeId], degrees: &[u32]) -> Option<f64> {
    if nodes.len() != degrees.len() || degrees.contains(&0) {
        return None;
    }
    let c = collision_pairs(nodes);
    if c == 0 {
        return None;
    }
    let sum_d: f64 = degrees.iter().map(|&d| d as f64).sum();
    let sum_inv: f64 = degrees.iter().map(|&d| 1.0 / d as f64).sum();
    Some(sum_d * sum_inv / (2.0 * c as f64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgte_graph::generators::{planted_partition, PlantedConfig};
    use cgte_sampling::{NodeSampler, RandomWalk, UniformIndependence};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn collision_pairs_counts_combinations() {
        assert_eq!(collision_pairs(&[]), 0);
        assert_eq!(collision_pairs(&[1, 2, 3]), 0);
        assert_eq!(collision_pairs(&[1, 1]), 1);
        assert_eq!(collision_pairs(&[1, 1, 1]), 3);
        assert_eq!(collision_pairs(&[1, 1, 2, 2, 2]), 1 + 3);
    }

    #[test]
    fn no_collisions_is_none() {
        assert_eq!(population_size_uniform(&[1, 2, 3]), None);
        assert_eq!(population_size_weighted(&[1, 2], &[3, 3]), None);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert_eq!(population_size_weighted(&[1, 1], &[3]), None);
        assert_eq!(population_size_weighted(&[1, 1], &[0, 3]), None);
    }

    #[test]
    fn uniform_estimator_recovers_population() {
        let mut rng = StdRng::seed_from_u64(1);
        let n_true = 2000.0;
        // Direct uniform draws over 0..2000 (graph structure irrelevant).
        use rand::Rng;
        let nodes: Vec<NodeId> = (0..1500).map(|_| rng.gen_range(0..2000)).collect();
        let est = population_size_uniform(&nodes).unwrap();
        assert!(
            (est - n_true).abs() / n_true < 0.2,
            "est {est} vs true {n_true}"
        );
    }

    #[test]
    fn weighted_estimator_recovers_population_from_rw() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = PlantedConfig {
            category_sizes: vec![300, 600, 900],
            k: 8,
            alpha: 0.5,
        };
        let pg = planted_partition(&cfg, &mut rng).unwrap();
        let n_true = pg.graph.num_nodes() as f64;
        let rw = RandomWalk::new().burn_in(500).thinning(3);
        let nodes = rw.sample(&pg.graph, 3000, &mut rng);
        let degrees: Vec<u32> = nodes.iter().map(|&v| pg.graph.degree(v) as u32).collect();
        let est = population_size_weighted(&nodes, &degrees).unwrap();
        assert!(
            (est - n_true).abs() / n_true < 0.25,
            "est {est} vs true {n_true}"
        );
    }

    #[test]
    fn uniform_estimator_from_uis_on_graph() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = PlantedConfig {
            category_sizes: vec![500, 500],
            k: 6,
            alpha: 0.0,
        };
        let pg = planted_partition(&cfg, &mut rng).unwrap();
        let nodes = UniformIndependence.sample(&pg.graph, 800, &mut rng);
        let est = population_size_uniform(&nodes).unwrap();
        let n_true = 1000.0;
        assert!(
            (est - n_true).abs() / n_true < 0.35,
            "est {est} vs true {n_true}"
        );
    }
}
