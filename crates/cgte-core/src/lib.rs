//! Design-based estimators of coarse-grained topology — the paper's
//! contribution (§4 and §5).
//!
//! Given a probability sample of nodes observed under the induced-subgraph
//! or star scenario ([`cgte_sampling::InducedSample`] /
//! [`cgte_sampling::StarSample`]), this crate estimates:
//!
//! - **category sizes** `|A|` — [`category_size`]:
//!   - induced: Eq. (4) uniform / Eq. (11) weighted,
//!   - star: Eq. (5) uniform / Eq. (12) weighted, built from the component
//!     estimators Eq. (6)(7) / Eq. (13)(14), with the optional model-based
//!     `k̂_A = k̂_V` variant of footnote 4;
//! - **category edge weights** `w(A,B) = |E_AB|/(|A|·|B|)` —
//!   [`edge_weight`]:
//!   - induced: Eq. (8) / Eq. (15),
//!   - star: Eq. (9) / Eq. (16) with pluggable size estimates;
//! - the **whole category graph** in one call —
//!   [`CategoryGraphEstimator`];
//! - the **population size** `N` when unknown (§4.3) — [`population`],
//!   collision-based ("reversed coupon collector", the paper's \[33\]);
//! - **bootstrap** variance and confidence intervals (§5.3.2) —
//!   [`bootstrap`].
//!
//! All estimators are *design-based*: they consume only the observation
//! structures, never the graph, and correct for known sampling weights via
//! the Hansen–Hurwitz construction (Eq. (10), [`hansen_hurwitz`]). Every
//! estimator is consistent (paper appendix); the integration tests verify
//! the empirical convergence rate.
//!
//! Uniform designs are the `w(v) ≡ 1` special case of the weighted
//! formulas; [`Design::Uniform`] forces unit weights so that, e.g., an MHRW
//! sample is treated as uniform regardless of what weights were recorded.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bootstrap;
pub mod category_size;
pub mod edge_weight;
pub mod hansen_hurwitz;
pub mod local_properties;
pub mod population;
pub mod stream;

mod category_graph_est;

pub use category_graph_est::{CategoryGraphEstimator, Design, SizeMethod};
pub use category_size::StarSizeOptions;
pub use stream::{estimate_stream, estimate_stream_into, StreamEstimate};
