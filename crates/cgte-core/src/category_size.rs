//! Category size estimators `|Â|` (§4.1 uniform, §5.2 weighted).
//!
//! The induced estimator needs only the categories of sampled nodes; the
//! star estimator additionally exploits the neighbor categories and tends to
//! win on dense graphs with homogeneous degrees, while losing under heavy
//! degree skew (§6.3.2). Both are written in their weighted (Hansen–Hurwitz)
//! form; with unit weights they reduce *exactly* to the uniform equations,
//! which the tests verify.

use crate::hansen_hurwitz::{hh_mean, reweighted_size};
use cgte_graph::CategoryId;
use cgte_sampling::{InducedAccumulator, InducedSample, StarAccumulator, StarSample};

/// The per-sample records every size estimator consumes: category, degree
/// and design weight per sampled node.
///
/// Implemented for both observation scenarios — the paper applies the
/// *induced* (counting) size estimator to star-collected data too (§7.1
/// discards star information for comparison).
pub trait Records {
    /// Category of each sample.
    fn rec_categories(&self) -> &[CategoryId];
    /// Degree of each sample.
    fn rec_degrees(&self) -> &[u32];
    /// Design weight of each sample.
    fn rec_weights(&self) -> &[f64];
    /// Number of categories in the partition.
    fn rec_num_categories(&self) -> usize;
}

impl Records for InducedSample {
    fn rec_categories(&self) -> &[CategoryId] {
        self.categories()
    }
    fn rec_degrees(&self) -> &[u32] {
        self.degrees()
    }
    fn rec_weights(&self) -> &[f64] {
        self.weights()
    }
    fn rec_num_categories(&self) -> usize {
        self.num_categories()
    }
}

impl Records for StarSample {
    fn rec_categories(&self) -> &[CategoryId] {
        self.categories()
    }
    fn rec_degrees(&self) -> &[u32] {
        self.degrees()
    }
    fn rec_weights(&self) -> &[f64] {
        self.weights()
    }
    fn rec_num_categories(&self) -> usize {
        self.num_categories()
    }
}

/// Induced (counting) estimator of `|A|`: Eq. (4) uniform, Eq. (11)
/// weighted — `|Â| = N · w⁻¹(S_A) / w⁻¹(S)`.
///
/// Returns `None` on an empty sample. `population` is `N` (or any constant
/// if only relative sizes are needed, §4.3).
pub fn induced_size<S: Records + ?Sized>(
    sample: &S,
    c: CategoryId,
    population: f64,
) -> Option<f64> {
    let cats = sample.rec_categories();
    let ws = sample.rec_weights();
    if cats.is_empty() {
        return None;
    }
    let num: f64 = cats
        .iter()
        .zip(ws)
        .filter(|(cat, _)| **cat == c)
        .map(|(_, w)| 1.0 / w)
        .sum();
    Some(population * num / reweighted_size(ws))
}

/// All category sizes by the induced estimator in one pass.
///
/// Returns `None` on an empty sample; unsampled categories estimate 0.
pub fn induced_sizes<S: Records + ?Sized>(sample: &S, population: f64) -> Option<Vec<f64>> {
    let cats = sample.rec_categories();
    let ws = sample.rec_weights();
    if cats.is_empty() {
        return None;
    }
    let mut per_cat = vec![0.0f64; sample.rec_num_categories()];
    for (&c, &w) in cats.iter().zip(ws) {
        per_cat[c as usize] += 1.0 / w;
    }
    let total = reweighted_size(ws);
    Some(
        per_cat
            .into_iter()
            .map(|x| population * x / total)
            .collect(),
    )
}

/// Mean degree `k̂_V` over the whole graph: Eq. (6) uniform, Eq. (14)
/// weighted. Returns `None` on an empty sample.
pub fn mean_degree<S: Records + ?Sized>(sample: &S) -> Option<f64> {
    hh_mean(
        sample
            .rec_degrees()
            .iter()
            .zip(sample.rec_weights())
            .map(|(&d, &w)| (d as f64, w)),
    )
}

/// Mean degree `k̂_A` within category `c`: Eq. (6) uniform, Eq. (14)
/// weighted. Returns `None` if no sample fell in `c`.
pub fn mean_degree_in<S: Records + ?Sized>(sample: &S, c: CategoryId) -> Option<f64> {
    hh_mean(
        sample
            .rec_categories()
            .iter()
            .zip(sample.rec_degrees())
            .zip(sample.rec_weights())
            .filter(|((cat, _), _)| **cat == c)
            .map(|((_, &d), &w)| (d as f64, w)),
    )
}

/// Star estimator of the relative volume `f̂_A^vol = vol(A)/vol(V)`:
/// Eq. (7) uniform, Eq. (13) weighted —
/// `[Σ_s (1/w(s)) Σ_{v∈N(s)} 1{v∈A}] / [Σ_s deg(s)/w(s)]`.
///
/// This is the paper's preferred `f_vol` estimator (from \[35\]); it uses
/// *all* observed neighbor categories rather than sample counting.
/// Returns `None` if the sample has zero total degree.
pub fn relative_volume(sample: &StarSample, c: CategoryId) -> Option<f64> {
    let mut num = 0.0;
    let mut den = 0.0;
    for i in 0..sample.len() {
        let w = sample.weights()[i];
        num += sample.neighbors_in(i, c) as f64 / w;
        den += sample.degrees()[i] as f64 / w;
    }
    if den == 0.0 {
        None
    } else {
        Some(num / den)
    }
}

/// Options for the star size estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StarSizeOptions {
    /// Use the model-based variant `k̂_A := k̂_V` of the paper's footnote 4:
    /// lower variance (and defined even when no sample fell in `A`) at the
    /// cost of bias when category mean degrees differ — the classic
    /// precision-vs-accuracy tradeoff. Ablation A1 quantifies it.
    pub model_based_mean_degree: bool,
}

/// Star estimator of `|A|`: Eq. (5) uniform, Eq. (12) weighted —
/// `|Â| = N · f̂_A^vol · k̂_V / k̂_A`.
///
/// Returns `None` when a component is undefined: empty/zero-volume sample,
/// or (in the plug-in variant) no sample from `A` / zero `k̂_A`.
pub fn star_size(
    sample: &StarSample,
    c: CategoryId,
    population: f64,
    opts: &StarSizeOptions,
) -> Option<f64> {
    let f_vol = relative_volume(sample, c)?;
    let k_v = mean_degree(sample)?;
    let k_a = if opts.model_based_mean_degree {
        k_v
    } else {
        mean_degree_in(sample, c)?
    };
    if k_a == 0.0 {
        return None;
    }
    Some(population * f_vol * k_v / k_a)
}

/// Final assembly of the star size estimates from the five sufficient
/// statistics — shared verbatim by the from-scratch and incremental paths
/// so the two are bit-identical. Writes into `out` (cleared first) so hot
/// snapshot paths reuse one buffer per thread.
#[allow(clippy::too_many_arguments)]
fn finish_star_sizes_into(
    num_c: usize,
    nbr_mass: &[f64],
    deg_mass: f64,
    inv_mass: f64,
    inv_mass_in: &[f64],
    deg_mass_in: &[f64],
    population: f64,
    opts: &StarSizeOptions,
    out: &mut Vec<Option<f64>>,
) {
    out.clear();
    if deg_mass == 0.0 || inv_mass == 0.0 {
        out.resize(num_c, None);
        return;
    }
    let k_v = deg_mass / inv_mass;
    out.extend((0..num_c).map(|c| {
        let f_vol = nbr_mass[c] / deg_mass;
        let k_a = if opts.model_based_mean_degree {
            k_v
        } else {
            if inv_mass_in[c] == 0.0 {
                return None;
            }
            deg_mass_in[c] / inv_mass_in[c]
        };
        if k_a == 0.0 {
            return None;
        }
        Some(population * f_vol * k_v / k_a)
    }));
}

/// All category sizes by the star estimator in one pass over the sample.
///
/// Per-category entries are `None` exactly when [`star_size`] would be.
pub fn star_sizes(
    sample: &StarSample,
    population: f64,
    opts: &StarSizeOptions,
) -> Vec<Option<f64>> {
    let num_c = sample.num_categories();
    let mut nbr_mass = vec![0.0f64; num_c]; // Σ (1/w) · #neighbors in c
    let mut deg_mass = 0.0f64; // Σ deg/w
    let mut inv_mass_in = vec![0.0f64; num_c]; // w⁻¹(S_c)
    let mut deg_mass_in = vec![0.0f64; num_c]; // Σ_{S_c} deg/w
    let mut inv_mass = 0.0f64; // w⁻¹(S)
    for i in 0..sample.len() {
        let w = sample.weights()[i];
        let c = sample.categories()[i] as usize;
        let d = sample.degrees()[i] as f64;
        for &(cat, cnt) in sample.neighbor_categories(i) {
            nbr_mass[cat as usize] += cnt as f64 / w;
        }
        deg_mass += d / w;
        inv_mass += 1.0 / w;
        inv_mass_in[c] += 1.0 / w;
        deg_mass_in[c] += d / w;
    }
    let mut out = Vec::new();
    finish_star_sizes_into(
        num_c,
        &nbr_mass,
        deg_mass,
        inv_mass,
        &inv_mass_in,
        &deg_mass_in,
        population,
        opts,
        &mut out,
    );
    out
}

/// All category sizes by the star estimator from incremental accumulator
/// state — `O(C)`, bit-identical to [`star_sizes`] over the same prefix.
pub fn star_sizes_acc(
    acc: &StarAccumulator,
    population: f64,
    opts: &StarSizeOptions,
) -> Vec<Option<f64>> {
    let mut out = Vec::new();
    star_sizes_acc_into(acc, population, opts, &mut out);
    out
}

/// Allocation-free [`star_sizes_acc`]: writes into `out` (cleared first),
/// so per-prefix snapshot loops reuse one buffer.
pub fn star_sizes_acc_into(
    acc: &StarAccumulator,
    population: f64,
    opts: &StarSizeOptions,
    out: &mut Vec<Option<f64>>,
) {
    finish_star_sizes_into(
        acc.num_categories(),
        acc.neighbor_mass(),
        acc.degree_mass(),
        acc.inverse_mass(),
        acc.inverse_mass_in(),
        acc.degree_mass_in(),
        population,
        opts,
        out,
    )
}

/// All category sizes by the induced estimator from incremental
/// accumulator state — `O(C)`, bit-identical to [`induced_sizes`] over the
/// same prefix.
///
/// Returns `None` on an empty accumulator, like [`induced_sizes`].
pub fn induced_sizes_acc(acc: &InducedAccumulator, population: f64) -> Option<Vec<f64>> {
    if acc.is_empty() {
        return None;
    }
    let mut out = Vec::new();
    induced_sizes_acc_into(acc, population, &mut out);
    Some(out)
}

/// Allocation-free [`induced_sizes_acc`]: writes into `out` (cleared
/// first). On an empty accumulator — where the estimator is undefined —
/// it writes the operational all-zeros reading (the NRMSE protocol's
/// "observed nothing, estimate 0") and returns `false`; otherwise `true`.
pub fn induced_sizes_acc_into(
    acc: &InducedAccumulator,
    population: f64,
    out: &mut Vec<f64>,
) -> bool {
    out.clear();
    if acc.is_empty() {
        out.resize(acc.num_categories(), 0.0);
        return false;
    }
    let total = acc.inverse_mass();
    out.extend(
        acc.per_category_mass()
            .iter()
            .map(|&x| population * x / total),
    );
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgte_graph::{Graph, GraphBuilder, Partition};
    use cgte_sampling::{NodeSampler, RandomWalk, StarSample, UniformIndependence};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two triangles joined by a bridge: categories {0,1,2} and {3,4,5}.
    fn fixture() -> (Graph, Partition) {
        let g =
            GraphBuilder::from_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
                .unwrap();
        let p = Partition::from_assignments(vec![0, 0, 0, 1, 1, 1], 2).unwrap();
        (g, p)
    }

    #[test]
    fn induced_size_matches_eq4_on_uniform_sample() {
        let (g, p) = fixture();
        // Sample: two from category 0, one from category 1, N = 6.
        let s = InducedSample::observe(&g, &p, &[0, 1, 4]);
        // Eq. (4): |Â| = 6 * 2/3.
        assert!((induced_size(&s, 0, 6.0).unwrap() - 4.0).abs() < 1e-12);
        assert!((induced_size(&s, 1, 6.0).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn induced_size_weighted_corrects_degree_bias() {
        // Star graph: center (cat 0, deg 4), 4 leaves (cat 1, deg 1).
        // A perfectly degree-representative sample: center 4x, each leaf 1x.
        let mut b = GraphBuilder::new(5);
        for v in 1..5 {
            b.add_edge(0, v).unwrap();
        }
        let g = b.build();
        let p = Partition::from_assignments(vec![0, 1, 1, 1, 1], 2).unwrap();
        let rw = RandomWalk::new();
        let nodes = [0, 0, 0, 0, 1, 2, 3, 4];
        let s = InducedSample::observe_sampler(&g, &p, &nodes, &rw);
        // Eq. (11): w⁻¹(S_0) = 4·(1/4) = 1; w⁻¹(S) = 1 + 4 = 5; |Â| = 5·1/5 = 1.
        assert!((induced_size(&s, 0, 5.0).unwrap() - 1.0).abs() < 1e-12);
        assert!((induced_size(&s, 1, 5.0).unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn induced_sizes_consistent_with_single() {
        let (g, p) = fixture();
        let s = InducedSample::observe(&g, &p, &[0, 1, 4, 5, 5]);
        let all = induced_sizes(&s, 6.0).unwrap();
        for c in 0..2 {
            assert!((all[c as usize] - induced_size(&s, c, 6.0).unwrap()).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_sample_returns_none() {
        let (g, p) = fixture();
        let s = InducedSample::observe(&g, &p, &[]);
        assert_eq!(induced_size(&s, 0, 6.0), None);
        assert_eq!(induced_sizes(&s, 6.0), None);
        let star = StarSample::observe(&g, &p, &[]);
        assert_eq!(star_size(&star, 0, 6.0, &StarSizeOptions::default()), None);
    }

    #[test]
    fn mean_degree_components() {
        let (g, p) = fixture();
        // Degrees: node 2 and 3 have 3, others 2.
        let s = StarSample::observe(&g, &p, &[0, 2]);
        assert!((mean_degree(&s).unwrap() - 2.5).abs() < 1e-12);
        assert!((mean_degree_in(&s, 0).unwrap() - 2.5).abs() < 1e-12);
        assert_eq!(mean_degree_in(&s, 1), None); // no samples from cat 1
    }

    #[test]
    fn relative_volume_exact_on_full_sample() {
        let (g, p) = fixture();
        // Full sample: f̂vol must equal the true volume fractions (7 edges,
        // vol(V)=14; cat 0 has degrees 2+2+3=7).
        let s = StarSample::observe(&g, &p, &[0, 1, 2, 3, 4, 5]);
        assert!((relative_volume(&s, 0).unwrap() - 0.5).abs() < 1e-12);
        assert!((relative_volume(&s, 1).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn star_size_exact_on_full_uniform_sample() {
        let (g, p) = fixture();
        let s = StarSample::observe(&g, &p, &[0, 1, 2, 3, 4, 5]);
        let opts = StarSizeOptions::default();
        // Full sample: f̂vol, k̂V, k̂A are all exact, so |Â| is exact.
        assert!((star_size(&s, 0, 6.0, &opts).unwrap() - 3.0).abs() < 1e-9);
        assert!((star_size(&s, 1, 6.0, &opts).unwrap() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn star_sizes_match_single_calls() {
        let (g, p) = fixture();
        let s = StarSample::observe(&g, &p, &[0, 2, 3, 3, 5]);
        for opts in [
            StarSizeOptions::default(),
            StarSizeOptions {
                model_based_mean_degree: true,
            },
        ] {
            let all = star_sizes(&s, 6.0, &opts);
            for c in 0..2u32 {
                let single = star_size(&s, c, 6.0, &opts);
                match (all[c as usize], single) {
                    (Some(a), Some(b)) => assert!((a - b).abs() < 1e-12),
                    (None, None) => {}
                    other => panic!("mismatch for c={c}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn model_based_defined_without_category_samples() {
        let (g, p) = fixture();
        // Only category-0 nodes sampled; node 2 sees neighbor 3 in cat 1.
        let s = StarSample::observe(&g, &p, &[0, 2]);
        let plugin = star_size(&s, 1, 6.0, &StarSizeOptions::default());
        assert_eq!(plugin, None, "plug-in k̂_A undefined without samples from A");
        let model = star_size(
            &s,
            1,
            6.0,
            &StarSizeOptions {
                model_based_mean_degree: true,
            },
        );
        assert!(model.unwrap() > 0.0, "model-based variant extrapolates");
    }

    #[test]
    fn star_size_converges_under_uis() {
        // Statistical check: moderately large planted graph, big sample.
        use cgte_graph::generators::{planted_partition, PlantedConfig};
        let mut rng = StdRng::seed_from_u64(42);
        let cfg = PlantedConfig {
            category_sizes: vec![100, 300, 600],
            k: 8,
            alpha: 0.3,
        };
        let pg = planted_partition(&cfg, &mut rng).unwrap();
        let n = pg.graph.num_nodes() as f64;
        let nodes = UniformIndependence.sample(&pg.graph, 4000, &mut rng);
        let s = StarSample::observe(&pg.graph, &pg.partition, &nodes);
        for (c, truth) in [(0u32, 100.0), (1, 300.0), (2, 600.0)] {
            let est = star_size(&s, c, n, &StarSizeOptions::default()).unwrap();
            assert!(
                (est - truth).abs() / truth < 0.25,
                "cat {c}: est {est} vs truth {truth}"
            );
        }
    }

    #[test]
    fn induced_size_converges_under_rw() {
        use cgte_graph::generators::{planted_partition, PlantedConfig};
        let mut rng = StdRng::seed_from_u64(43);
        let cfg = PlantedConfig {
            category_sizes: vec![100, 300, 600],
            k: 8,
            alpha: 0.3,
        };
        let pg = planted_partition(&cfg, &mut rng).unwrap();
        let n = pg.graph.num_nodes() as f64;
        let rw = RandomWalk::new().burn_in(500);
        let nodes = rw.sample(&pg.graph, 8000, &mut rng);
        let s = InducedSample::observe_sampler(&pg.graph, &pg.partition, &nodes, &rw);
        for (c, truth) in [(0u32, 100.0), (1, 300.0), (2, 600.0)] {
            let est = induced_size(&s, c, n).unwrap();
            assert!(
                (est - truth).abs() / truth < 0.3,
                "cat {c}: est {est} vs truth {truth}"
            );
        }
    }
}
