//! `cgte` — command-line pipeline for coarse-grained topology estimation.
//!
//! Subcommands:
//!
//! - `generate` — synthesize a graph + categories to edge-list files;
//! - `ingest`   — convert a text edge list (+ categories) to the binary
//!   `.cgteg` graph container;
//! - `info`     — inspect a `.cgteg` container (sections, graph stats);
//! - `sample`   — draw a node sample from a graph with any sampler;
//! - `exact`    — compute the exact category graph and export it;
//! - `estimate` — sample, estimate the category graph, and export it;
//! - `run`      — execute a declarative `.scn` experiment scenario (or a
//!   built-in one) on the parallel scenario engine;
//! - `bench`    — the performance harness, with a `--check` regression
//!   gate against a committed baseline report.
//!
//! Run `cgte help` for usage. Arguments are `--key value` pairs; parsing is
//! deliberately dependency-free.

use cgte_core::{CategoryGraphEstimator, Design, SizeMethod, StarSizeOptions};
use cgte_datasets::{
    read_categories, read_edgelist, standin, standin_partition, write_categories, write_edgelist,
    StandinKind,
};
use cgte_graph::generators::{planted_partition, PlantedConfig};
use cgte_graph::{CategoryGraph, Graph, Partition};
use cgte_sampling::{
    AnySampler, MetropolisHastingsWalk, NodeSampler, RandomWalk, StarSample, Swrw,
    UniformIndependence,
};
use cgte_viz::{to_csv_edges, to_dot, to_graphml, to_json, top_edges_report, ExportOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::process::ExitCode;

const USAGE: &str = "\
cgte — coarse-grained topology estimation via graph sampling

USAGE:
  cgte generate planted  --k K --alpha A [--scale D] [--seed S] --graph G.txt --cats C.txt
  cgte generate standin  --kind texas|neworleans|p2p|epinions [--scale D] [--top-k 50]
                         [--seed S] --graph G.txt --cats C.txt
  cgte ingest            --graph G.txt [--cats C.txt] --out F.cgteg
  cgte info              F.cgteg [--sections true]
  cgte sample            --graph G.txt --sampler uis|rw|mhrw|swrw [--cats C.txt] [--n N]
                         [--burn-in B] [--thinning T] [--seed S] [--out S.txt]
  cgte exact             --graph G.txt --cats C.txt [--format dot|json|graphml|csv|report]
                         [--top-k K] [--out F]
  cgte estimate          --graph G.txt --cats C.txt --sampler uis|rw|mhrw|swrw [--n N]
                         [--design uniform|weighted] [--sizes induced|star] [--seed S]
                         [--ci LEVEL] [--boot REPS]
                         [--format dot|json|graphml|csv|report] [--top-k K] [--out F]
  cgte run               SCENARIO.scn | --builtin NAME|all [--quick | --full | --huge]
                         [--seed S] [--threads N] [--csv DIR] [--out DIR] [--resume]
                         [--cache-dir DIR] [--mmap true|false]
                         [--trace FILE.jsonl] [--trace-level N]
  cgte serve             --cache-dir DIR [--port P] [--addr HOST:PORT] [--threads N]
                         [--idle-poll-ms MS] [--session-ttl SECS] [--max-sessions N]
                         [--mmap true|false] [--event-loop true|false]
                         [--request-timeout-ms MS] [--max-body-bytes N]
                         [--trace FILE.jsonl] [--trace-level N]
  cgte cluster           --cache-dir DIR --graph NAME --shards H:P,H:P[,…]
                         [--partition NAME] [--sampler uis|rw|mhrw|swrw]
                         [--design uniform|weighted] [--seed S] [--burn-in B]
                         [--thinning T] [--walkers W] [--steps N] [--batch B]
                         [--snapshot-every R] [--round-threads N]
                         [--timeout-ms MS] [--retries R] [--verify true]
                         [--trace FILE.jsonl] [--trace-level N]
  cgte trace summarize   FILE.jsonl
  cgte metrics check     FILE.txt | -
  cgte bench             [--quick] [--seed S] [--threads 1,2,8] [--out FILE.json]
                         [--cache-dir DIR] [--check BASELINE.json]
  cgte help

`cgte ingest` converts a SNAP-style text edge list (plus an optional node
category file) into the checksummed binary .cgteg container; `cgte info`
prints a container's table of contents and derived graph statistics from
the section headers alone (no CSR payload is read). Scenario files load
.cgteg graphs with `generator = \"file\"`.

`--mmap true` (on run and serve; serve defaults to it) loads .cgteg
graphs through the zero-copy mapped path: v2 CSR payloads are borrowed
from a shared read-only mapping after checksum verification instead of
being decoded onto the heap. Results are bit-identical either way; v1
files silently fall back to the heap decode.

`cgte run` executes a declarative experiment scenario: graphs, samplers,
sweeps, prefix sizes and targets described in a TOML-like .scn file (see
EXPERIMENTS.md), scheduled as a parallel job DAG with a shared graph cache.
With --cache-dir every built graph is persisted under its content key, so
a warm run performs zero graph builds (stderr reports builds/loads/hits).
Built-in scenarios: fig3 fig4 fig5 fig6 fig7 table1 table2
ablation_model_based ablation_swrw ablation_thinning huge.

`cgte serve` runs the online estimation service: an HTTP/1.1 API over the
.cgteg store directory (open sampling sessions, stream node batches or
walk budgets in, read category-graph estimates at any prefix — with
bootstrap CIs via ?ci=0.95). Sessions can be checkpointed to durable
.cgtes snapshots and restored bit-exactly (POST /sessions/{id}/snapshot,
POST /sessions/restore); GET /metrics exposes Prometheus counters. On a
warm cache the server performs zero graph builds; see EXPERIMENTS.md for
endpoints and JSON shapes.

`cgte cluster` coordinates a sharded run over N `cgte serve` processes:
walk budget fanned out as per-seed walkers, sessions checkpointed every
--snapshot-every rounds, dead shards circuit-broken and their walkers
restored onto survivors, and the merged estimate pinned bit-exact against
the local single-box path (--verify true asserts it and exits non-zero on
any mismatch). --round-threads N drives each round's per-walker HTTP
trips on N pool workers — the merged result is bit-identical at any N.
A dead shard is probed half-open at every checkpoint boundary; when it
answers again, walkers rebalance back onto it. The JSON report on stdout
includes degraded/coverage fields when walkers could not complete.

`cgte estimate --ci 0.95` additionally prints per-category bootstrap
percentile confidence intervals for the size estimates to stderr.

`--trace FILE.jsonl` (on serve, cluster and run) writes structured spans
and events — request handling, cluster rounds/retries/breaker
transitions, server-side walk statistics, scenario jobs and cache
hits — as one JSON object per line. `--trace-level` selects detail:
1 = coarse spans only, 2 = + lifecycle/retry/cache events (default),
3 = fine. `cgte trace summarize` aggregates such a file into a
per-span-name count/total/p50/p90/p99 latency table. `cgte metrics
check` parses a Prometheus text exposition (a /metrics scrape saved to
a file, or `-` for stdin) and validates it: TYPE/HELP declarations,
finite values, histogram bucket monotonicity and _sum/_count
consistency.

`cgte bench` times graph build rate, .cgteg load rate, walk steps/sec,
estimate throughput, serve request throughput/latency, open-loop served
latency with thousands of idle keep-alive connections parked (the
`serve_open` section, which also pins the idle-CPU ratio of the
thread-per-connection fallback vs. the event-driven engine) and the
sharded coordinator's wall-clock at each thread count (the `cluster`
section drives a fixed 4-shard, 16-walker run at every --round-threads
size) and writes a machine-readable JSON report (default
BENCH_PR10.json; see EXPERIMENTS.md for the schema). With --check it
then compares the fresh report against a committed baseline and fails on
a >25% per-metric regression (warns over 10%). The `obs` section pins
the tracing-disabled overhead of the instrumentation (ratios ~1.0).
";

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliError = Box<dyn std::error::Error>;

/// Parses `--key value` pairs after the subcommand words.
struct Args {
    map: HashMap<String, String>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Args, CliError> {
        let mut map = HashMap::new();
        let mut it = raw.iter();
        while let Some(k) = it.next() {
            let key = k
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got {k:?}"))?;
            let v = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
            map.insert(key.to_string(), v.clone());
        }
        Ok(Args { map })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.map.get(key).map(String::as_str)
    }

    fn required(&self, key: &str) -> Result<&str, CliError> {
        self.get(key)
            .ok_or_else(|| format!("missing required --{key}").into())
    }

    fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|e| format!("invalid --{key} {v:?}: {e}").into()),
        }
    }
}

fn run() -> Result<(), CliError> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let result = match argv.first().map(String::as_str) {
        Some("generate") => {
            let kind = argv.get(1).map(String::as_str).unwrap_or("");
            let args = Args::parse(&argv[2..])?;
            cmd_generate(kind, &args)
        }
        Some("ingest") => cmd_ingest(&Args::parse(&argv[1..])?),
        Some("info") => cmd_info(&argv[1..]),
        Some("sample") => cmd_sample(&Args::parse(&argv[1..])?),
        Some("exact") => cmd_exact(&Args::parse(&argv[1..])?),
        Some("estimate") => cmd_estimate(&Args::parse(&argv[1..])?),
        Some("run") => cmd_run(&argv[1..]),
        Some("serve") => cmd_serve(&Args::parse(&argv[1..])?),
        Some("cluster") => cmd_cluster(&Args::parse(&argv[1..])?),
        Some("trace") => cmd_trace(&argv[1..]),
        Some("metrics") => cmd_metrics(&argv[1..]),
        Some("bench") => cmd_bench(&argv[1..]),
        Some("help") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand {other:?}\n{USAGE}").into()),
    };
    // Flush + drop the trace sink (a no-op when --trace was not given),
    // so the last buffered JSONL records hit disk on every exit path.
    cgte_obs::shutdown();
    result
}

/// Installs the JSONL trace sink when `--trace FILE` was given.
/// `--trace-level` defaults to 2 (coarse spans + lifecycle detail).
fn install_trace(path: Option<&str>, level: u8) -> Result<(), CliError> {
    let Some(path) = path else { return Ok(()) };
    if level == 0 {
        return Err("--trace-level must be 1, 2 or 3".into());
    }
    let sink = cgte_obs::JsonlSink::create(std::path::Path::new(path))
        .map_err(|e| format!("cannot create trace file {path:?}: {e}"))?;
    cgte_obs::install(std::sync::Arc::new(sink), level);
    Ok(())
}

/// `cgte trace summarize FILE.jsonl` — aggregates a trace into a
/// per-span-name latency table.
fn cmd_trace(argv: &[String]) -> Result<(), CliError> {
    match (argv.first().map(String::as_str), argv.get(1)) {
        (Some("summarize"), Some(path)) => {
            let file = File::open(path).map_err(|e| format!("cannot open {path:?}: {e}"))?;
            let summary = cgte_obs::summarize::summarize(BufReader::new(file))?;
            print!("{}", summary.render());
            Ok(())
        }
        _ => Err(format!("usage: cgte trace summarize FILE.jsonl\n{USAGE}").into()),
    }
}

/// `cgte metrics check FILE` — validates a Prometheus text exposition
/// (`-` reads stdin). Exit code 1 with every violation on stderr.
fn cmd_metrics(argv: &[String]) -> Result<(), CliError> {
    match (argv.first().map(String::as_str), argv.get(1)) {
        (Some("check"), Some(path)) => {
            let text = if path == "-" {
                let mut s = String::new();
                std::io::Read::read_to_string(&mut std::io::stdin(), &mut s)?;
                s
            } else {
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?
            };
            match cgte_obs::promtext::validate(&text) {
                Ok(stats) => {
                    println!(
                        "metrics ok: {} families, {} samples, {} histograms",
                        stats.families, stats.samples, stats.histograms
                    );
                    Ok(())
                }
                Err(errors) => {
                    for e in &errors {
                        eprintln!("metrics: {e}");
                    }
                    Err(format!("exposition invalid ({} violation(s))", errors.len()).into())
                }
            }
        }
        _ => Err(format!("usage: cgte metrics check FILE|-\n{USAGE}").into()),
    }
}

fn load_graph(path: &str) -> Result<Graph, CliError> {
    Ok(read_edgelist(BufReader::new(File::open(path)?))?)
}

fn load_partition(path: &str, num_nodes: usize) -> Result<Partition, CliError> {
    Ok(read_categories(
        BufReader::new(File::open(path)?),
        num_nodes,
    )?)
}

fn save(path: Option<&str>, content: &str) -> Result<(), CliError> {
    match path {
        Some(p) => {
            let mut f = BufWriter::new(File::create(p)?);
            f.write_all(content.as_bytes())?;
            Ok(())
        }
        None => {
            print!("{content}");
            Ok(())
        }
    }
}

fn cmd_generate(kind: &str, args: &Args) -> Result<(), CliError> {
    let seed: u64 = args.parse_or("seed", 42)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let (graph, partition) = match kind {
        "planted" => {
            let k: usize = args.parse_or("k", 20)?;
            let alpha: f64 = args.parse_or("alpha", 0.5)?;
            let scale: usize = args.parse_or("scale", 1)?;
            let cfg = if scale == 1 {
                PlantedConfig::paper(k, alpha)
            } else {
                PlantedConfig::scaled(scale, k, alpha)
            };
            let pg = planted_partition(&cfg, &mut rng)?;
            (pg.graph, pg.partition)
        }
        "standin" => {
            let kind = match args.required("kind")? {
                "texas" => StandinKind::FacebookTexas,
                "neworleans" => StandinKind::FacebookNewOrleans,
                "p2p" => StandinKind::P2p,
                "epinions" => StandinKind::Epinions,
                other => return Err(format!("unknown standin kind {other:?}").into()),
            };
            let scale: usize = args.parse_or("scale", 1)?;
            let top_k: usize = args.parse_or("top-k", 50)?;
            let g = standin(kind, scale, &mut rng);
            let p = standin_partition(&g, top_k, false, &mut rng);
            (g, p)
        }
        other => return Err(format!("unknown generator {other:?}\n{USAGE}").into()),
    };
    let gpath = args.required("graph")?;
    let cpath = args.required("cats")?;
    write_edgelist(&graph, BufWriter::new(File::create(gpath)?))?;
    write_categories(&partition, BufWriter::new(File::create(cpath)?))?;
    eprintln!(
        "wrote {} nodes, {} edges, {} categories to {gpath} / {cpath}",
        graph.num_nodes(),
        graph.num_edges(),
        partition.num_categories()
    );
    Ok(())
}

fn cmd_ingest(args: &Args) -> Result<(), CliError> {
    let gpath = args.required("graph")?;
    let opath = args.required("out")?;
    let edges = BufReader::new(File::open(gpath)?);
    let cats = match args.get("cats") {
        Some(p) => Some(BufReader::new(File::open(p)?)),
        None => None,
    };
    let out = BufWriter::new(File::create(opath)?);
    let bundle = cgte_datasets::edgelist_to_cgteg(edges, cats, out)?;
    eprintln!(
        "ingested {} nodes, {} edges{} into {opath}",
        bundle.graph.num_nodes(),
        bundle.graph.num_edges(),
        match &bundle.partition {
            Some(p) => format!(", {} categories", p.num_categories()),
            None => String::new(),
        }
    );
    Ok(())
}

fn cmd_info(argv: &[String]) -> Result<(), CliError> {
    use cgte_graph::store::Loader;
    let path = argv
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("`info` needs a .cgteg file path")?;
    let args = Args::parse(&argv[1..])?;
    let show_sections: bool = args.parse_or("sections", true)?;
    // Table-of-contents scan only: O(metadata) I/O, so `info` on a
    // million-node store entry answers instantly without decoding any
    // CSR payload.
    let summary = Loader::open(path).summary()?;
    println!(
        "{path}: cgteg v{}, {} section(s)",
        summary.version,
        summary.sections.len()
    );
    if show_sections {
        for (name, count, bytes) in &summary.sections {
            println!("  {name:<24} x {count:>10}  ({bytes} bytes)");
        }
    }
    if let Some(kind) = &summary.kind {
        println!("kind: {kind}");
    }
    if let Some(key) = &summary.key {
        println!("key:  {key}");
    }
    if let (Some(n), Some(m)) = (summary.num_nodes, summary.num_edges) {
        let mean = if n > 0 {
            2.0 * m as f64 / n as f64
        } else {
            0.0
        };
        println!("graph: {n} nodes, {m} edges, mean degree {mean:.2}");
    }
    for name in &summary.partitions {
        println!("partition {name}");
    }
    Ok(())
}

fn make_sampler(
    name: &str,
    args: &Args,
    g: &Graph,
    p: Option<&Partition>,
) -> Result<AnySampler, CliError> {
    let burn: usize = args.parse_or("burn-in", 0)?;
    let thin: usize = args.parse_or("thinning", 1)?;
    Ok(match name {
        "uis" => AnySampler::Uis(UniformIndependence),
        "rw" => AnySampler::Rw(RandomWalk::new().burn_in(burn).thinning(thin)),
        "mhrw" => AnySampler::Mhrw(MetropolisHastingsWalk::new().burn_in(burn).thinning(thin)),
        "swrw" => {
            let p = p.ok_or("--sampler swrw needs --cats")?;
            let s = Swrw::equal_category_target(g, p)
                .ok_or("cannot build S-WRW (empty partition?)")?
                .burn_in(burn)
                .thinning(thin);
            AnySampler::Swrw(s)
        }
        other => return Err(format!("unknown sampler {other:?}").into()),
    })
}

fn cmd_sample(args: &Args) -> Result<(), CliError> {
    let g = load_graph(args.required("graph")?)?;
    let n: usize = args.parse_or("n", 1000)?;
    let seed: u64 = args.parse_or("seed", 42)?;
    // S-WRW stratifies by category, so it (alone) needs the partition.
    let p = match args.get("cats") {
        Some(path) => Some(load_partition(path, g.num_nodes())?),
        None => None,
    };
    let sampler = make_sampler(args.required("sampler")?, args, &g, p.as_ref())?;
    let mut rng = StdRng::seed_from_u64(seed);
    let nodes = sampler.sample(&g, n, &mut rng);
    let mut out = String::with_capacity(nodes.len() * 8);
    out.push_str("# cgte node sample\n");
    for v in nodes {
        out.push_str(&format!("{v}\n"));
    }
    save(args.get("out"), &out)
}

fn export(cg: &CategoryGraph, args: &Args) -> Result<(), CliError> {
    let top_k: usize = args.parse_or("top-k", 0)?;
    let opts = ExportOptions {
        top_k,
        ..Default::default()
    };
    let content = match args.get("format").unwrap_or("report") {
        "dot" => to_dot(cg, &opts),
        "json" => to_json(cg, &opts),
        "graphml" => to_graphml(cg, &opts),
        "csv" => to_csv_edges(cg, &opts),
        "report" => top_edges_report(cg, &opts, if top_k == 0 { 20 } else { top_k }),
        other => return Err(format!("unknown format {other:?}").into()),
    };
    save(args.get("out"), &content)
}

fn cmd_run(argv: &[String]) -> Result<(), CliError> {
    let mut scenario_path: Option<String> = None;
    let mut builtin: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut trace_level = 2u8;
    let mut opts = cgte_scenarios::RunOptions::default();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--trace" => {
                trace_path = Some(it.next().ok_or("--trace needs a file path")?.clone());
            }
            "--trace-level" => {
                let v = it.next().ok_or("--trace-level needs 1, 2 or 3")?;
                trace_level = v
                    .parse()
                    .map_err(|e| format!("invalid --trace-level {v:?}: {e}"))?;
            }
            "--quick" => opts.scale = cgte_scenarios::Scale::Quick,
            "--full" => opts.scale = cgte_scenarios::Scale::Full,
            "--huge" => opts.scale = cgte_scenarios::Scale::Huge,
            "--resume" => opts.resume = true,
            "--builtin" => {
                builtin = Some(
                    it.next()
                        .ok_or("--builtin needs a scenario name (or `all`)")?
                        .clone(),
                );
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs an integer")?;
                opts.seed = Some(
                    v.parse()
                        .map_err(|e| format!("invalid --seed {v:?}: {e}"))?,
                );
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs an integer")?;
                opts.threads = v
                    .parse()
                    .map_err(|e| format!("invalid --threads {v:?}: {e}"))?;
            }
            "--csv" => {
                opts.csv_dir = Some(it.next().ok_or("--csv needs a directory")?.into());
            }
            "--out" => {
                opts.out_dir = Some(it.next().ok_or("--out needs a directory")?.into());
            }
            "--cache-dir" => {
                opts.cache_dir = Some(it.next().ok_or("--cache-dir needs a directory")?.into());
            }
            "--mmap" => {
                let v = it.next().ok_or("--mmap needs true or false")?;
                opts.mmap = v
                    .parse()
                    .map_err(|e| format!("invalid --mmap {v:?}: {e}"))?;
            }
            other if !other.starts_with("--") && scenario_path.is_none() => {
                scenario_path = Some(other.to_string());
            }
            other => return Err(format!("unknown `run` argument {other:?}\n{USAGE}").into()),
        }
    }
    if opts.resume && opts.out_dir.is_none() {
        return Err("--resume requires --out DIR (the run directory holding the manifest)".into());
    }
    install_trace(trace_path.as_deref(), trace_level)?;
    // The `cache: builds=… loads=… hits=…` stderr lines are a stable,
    // grep-able contract: CI's warm-cache job asserts `builds=0` on them.
    match (scenario_path, builtin) {
        (Some(path), None) => {
            let stats = cgte_scenarios::run_scenario_path(std::path::Path::new(&path), &opts)?;
            eprintln!(
                "run complete: cache: builds={} loads={} hits={}",
                stats.builds, stats.loads, stats.hits
            );
            Ok(())
        }
        (None, Some(name)) if name == "all" => {
            let mut total = cgte_scenarios::CacheStats::default();
            for name in cgte_scenarios::builtin_names() {
                eprintln!("=== {name} ===");
                // Each scenario gets its own run subdirectory: manifests
                // are per-scenario (fingerprinted), so they cannot share
                // one directory. The graph cache directory, by contrast,
                // is shared — content keys are global.
                let mut per = opts.clone();
                per.out_dir = opts.out_dir.as_ref().map(|d| d.join(name));
                let stats = cgte_scenarios::run_builtin(name, &per)?;
                eprintln!(
                    "[{name}] cache: builds={} loads={} hits={}",
                    stats.builds, stats.loads, stats.hits
                );
                total.builds += stats.builds;
                total.loads += stats.loads;
                total.hits += stats.hits;
            }
            eprintln!(
                "total cache: builds={} loads={} hits={}",
                total.builds, total.loads, total.hits
            );
            Ok(())
        }
        (None, Some(name)) => {
            let stats = cgte_scenarios::run_builtin(&name, &opts)?;
            eprintln!(
                "run complete: cache: builds={} loads={} hits={}",
                stats.builds, stats.loads, stats.hits
            );
            Ok(())
        }
        (Some(_), Some(_)) => Err("pass either a scenario file or --builtin, not both".into()),
        (None, None) => {
            Err(format!("`run` needs a scenario file or --builtin NAME\n{USAGE}").into())
        }
    }
}

fn cmd_serve(args: &Args) -> Result<(), CliError> {
    let cache_dir = args.required("cache-dir")?;
    let addr = match (args.get("addr"), args.get("port")) {
        (Some(_), Some(_)) => return Err("pass either --addr or --port, not both".into()),
        (Some(a), None) => a.to_string(),
        (None, Some(p)) => {
            let port: u16 = p
                .parse()
                .map_err(|e| format!("invalid --port {p:?}: {e}"))?;
            format!("127.0.0.1:{port}")
        }
        (None, None) => "127.0.0.1:7171".to_string(),
    };
    let threads: usize = args.parse_or("threads", 4)?;
    if threads == 0 {
        return Err("--threads must be positive".into());
    }
    let defaults = cgte_serve::ServeConfig::default();
    let idle_poll_ms: u64 = args.parse_or("idle-poll-ms", defaults.idle_poll_ms)?;
    if idle_poll_ms == 0 {
        return Err("--idle-poll-ms must be positive".into());
    }
    let session_ttl_secs = match args.get("session-ttl") {
        None => None,
        Some(v) => Some(
            v.parse::<u64>()
                .map_err(|e| format!("invalid --session-ttl {v:?}: {e}"))?,
        ),
    };
    let max_sessions: usize = args.parse_or("max-sessions", defaults.max_sessions)?;
    if max_sessions == 0 {
        return Err("--max-sessions must be positive".into());
    }
    let mmap: bool = args.parse_or("mmap", defaults.mmap)?;
    let event_loop: bool = args.parse_or("event-loop", defaults.event_loop)?;
    let request_timeout_ms: u64 =
        args.parse_or("request-timeout-ms", defaults.request_timeout_ms)?;
    if request_timeout_ms == 0 {
        return Err("--request-timeout-ms must be positive".into());
    }
    let max_body_bytes: usize = args.parse_or("max-body-bytes", defaults.max_body_bytes)?;
    if max_body_bytes == 0 {
        return Err("--max-body-bytes must be positive".into());
    }
    let cfg = cgte_serve::ServeConfig {
        cache_dir: cache_dir.into(),
        addr,
        threads,
        idle_poll_ms,
        session_ttl_secs,
        max_sessions,
        mmap,
        event_loop,
        request_timeout_ms,
        max_body_bytes,
    };
    install_trace(args.get("trace"), args.parse_or("trace-level", 2u8)?)?;
    cgte_serve::run(&cfg)?;
    Ok(())
}

fn cmd_cluster(args: &Args) -> Result<(), CliError> {
    use cgte_serve::cluster::{self, ClusterConfig, RetryPolicy};

    let cache_dir = args.required("cache-dir")?;
    let graph_name = args.required("graph")?.to_string();
    let shards: Vec<String> = args
        .required("shards")?
        .split(',')
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    if shards.is_empty() {
        return Err("--shards needs at least one HOST:PORT".into());
    }
    let timeout_ms: u64 = args.parse_or("timeout-ms", 5000)?;
    let policy = RetryPolicy {
        request_timeout: std::time::Duration::from_millis(timeout_ms),
        connect_timeout: std::time::Duration::from_millis(timeout_ms.clamp(100, 1000)),
        max_retries: args.parse_or("retries", 3u32)?,
        ..RetryPolicy::default()
    };
    let cfg = ClusterConfig {
        graph: graph_name.clone(),
        partition: args.get("partition").map(str::to_string),
        sampler: args.get("sampler").unwrap_or("rw").to_string(),
        design: args.get("design").map(str::to_string),
        seed: args.parse_or("seed", 42u64)?,
        burn_in: args.parse_or("burn-in", 0usize)?,
        thinning: args.parse_or("thinning", 1usize)?,
        walkers: args.parse_or("walkers", 4usize)?,
        steps_per_walker: args.parse_or("steps", 1000usize)?,
        batch: args.parse_or("batch", 250usize)?,
        snapshot_every: args.parse_or("snapshot-every", 1usize)?,
        round_threads: args.parse_or("round-threads", 1usize)?,
        policy,
        jitter_seed: args.parse_or("jitter-seed", 0u64)?,
    };
    if cfg.round_threads == 0 {
        return Err("--round-threads must be positive".into());
    }
    let verify: bool = args.parse_or("verify", false)?;
    install_trace(args.get("trace"), args.parse_or("trace-level", 2u8)?)?;

    // The coordinator's local view of the shared store: used both to
    // merge the downloaded logs and to pin the result against the
    // single-box reference.
    let registry = cgte_serve::registry::Registry::new(cache_dir);
    let loaded = registry.get(&graph_name).map_err(|e| e.msg)?;
    let part_idx = match &cfg.partition {
        Some(name) => loaded
            .partition_idx(name)
            .ok_or_else(|| format!("graph {graph_name:?} has no partition {name:?}"))?,
        None => 0,
    };
    if loaded.partitions.is_empty() {
        return Err(format!("graph {graph_name:?} has no partitions").into());
    }
    let index = loaded.index(part_idx, 4);
    let partition = &loaded.partitions[part_idx].1;
    let ctx = cgte_sampling::ObservationContext::with_index(&loaded.graph, partition, &index);

    // Progress diagnostics go to stderr — stdout stays pure JSON for
    // machine consumers.
    let run = cluster::run_cluster_with(&cfg, &shards, &ctx, |ev| match ev {
        cluster::ClusterEvent::ShardDead { shard } => {
            eprintln!("cgte cluster: shard {shard} unresponsive; redistributing its walkers");
        }
        cluster::ClusterEvent::WalkerMoved { walker, from, to } => {
            eprintln!("cgte cluster: walker {walker} reassigned shard {from} -> {to}");
        }
        cluster::ClusterEvent::ShardRejoined { shard } => {
            eprintln!("cgte cluster: shard {shard} rejoined; rebalancing walkers back");
        }
        cluster::ClusterEvent::RoundDone { .. } => {}
    })?;
    eprintln!(
        "cgte cluster: {}/{} walkers complete, {}/{} shards alive, {} retries, {} reassignments, {} rounds",
        run.walkers_completed,
        run.walkers_total,
        run.shards_alive,
        run.shards_total,
        run.retries,
        run.reassignments,
        run.rounds,
    );
    let mut verified = true;
    if verify {
        if run.degraded {
            return Err(format!(
                "--verify failed: run degraded ({}/{} walkers complete)",
                run.walkers_completed, run.walkers_total
            )
            .into());
        }
        let reference = cluster::single_box_reference(&cfg, &loaded.graph, partition, &ctx)?;
        verified = run.stream == reference;
        if !verified {
            return Err(
                "--verify failed: merged cluster stream differs from the single-box reference"
                    .into(),
            );
        }
        eprintln!("cgte cluster: verified bit-exact against the single-box path");
    }

    // Estimate over the merged stream — the same pure snapshot function
    // the server and the batch runner use.
    let population = loaded.graph.num_nodes() as f64;
    let mut est = cgte_core::StreamEstimate::new(run.stream.num_categories());
    cgte_core::estimate_stream_into(
        run.stream.star(),
        run.stream.induced(),
        population,
        &StarSizeOptions::default(),
        true,
        &mut est,
    );
    let sizes_star: Vec<String> = est
        .sizes_star
        .iter()
        .map(|s| s.map_or("null".to_string(), |v| format!("{v:?}")))
        .collect();
    let sizes_induced: Vec<String> = est.sizes_induced.iter().map(|v| format!("{v:?}")).collect();
    println!(
        "{{\"graph\":\"{}\",\"walkers\":{},\"walkers_completed\":{},\"degraded\":{},\"coverage\":{},\"shards_alive\":{},\"shards_total\":{},\"retries\":{},\"reassignments\":{},\"rounds\":{},\"verified\":{},\"len\":{},\"sizes\":{{\"star\":[{}],\"induced\":[{}]}}}}",
        graph_name,
        run.walkers_total,
        run.walkers_completed,
        run.degraded,
        run.coverage,
        run.shards_alive,
        run.shards_total,
        run.retries,
        run.reassignments,
        run.rounds,
        if verify { verified.to_string() } else { "null".to_string() },
        run.stream.len(),
        sizes_star.join(","),
        sizes_induced.join(","),
    );
    if run.degraded && !verify {
        eprintln!(
            "cgte cluster: WARNING — degraded result, coverage {:.1}%",
            run.coverage * 100.0
        );
    }
    Ok(())
}

fn cmd_bench(argv: &[String]) -> Result<(), CliError> {
    let mut opts = cgte_bench::harness::BenchOptions::default();
    let mut baseline: Option<String> = None;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--cache-dir" => {
                opts.cache_dir = Some(it.next().ok_or("--cache-dir needs a directory")?.into());
            }
            "--check" => {
                baseline = Some(
                    it.next()
                        .ok_or("--check needs a baseline JSON path")?
                        .clone(),
                );
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs an integer")?;
                opts.seed = v
                    .parse()
                    .map_err(|e| format!("invalid --seed {v:?}: {e}"))?;
            }
            "--threads" => {
                let v = it
                    .next()
                    .ok_or("--threads needs a comma list, e.g. 1,2,8")?;
                opts.threads = v
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<usize>()
                            .map_err(|e| format!("invalid --threads entry {s:?}: {e}"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                if opts.threads.first() != Some(&1) || opts.threads.contains(&0) {
                    return Err(
                        "--threads must start with 1 (the serial reference) and contain only positive counts"
                            .into(),
                    );
                }
            }
            "--out" => {
                opts.out = it.next().ok_or("--out needs a file path")?.into();
            }
            other => return Err(format!("unknown `bench` argument {other:?}\n{USAGE}").into()),
        }
    }
    let report = cgte_bench::harness::run_bench(&opts)?;
    if let Some(path) = baseline {
        let baseline_text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read baseline {path:?}: {e}"))?;
        let outcome = cgte_bench::check::check_reports(&report, &baseline_text)?;
        for w in &outcome.warnings {
            eprintln!("bench-check WARN: {w}");
        }
        for f in &outcome.failures {
            eprintln!("bench-check FAIL: {f}");
        }
        eprintln!(
            "bench-check: {} metric(s) compared against {path}: {} failure(s), {} warning(s)",
            outcome.compared,
            outcome.failures.len(),
            outcome.warnings.len()
        );
        if !outcome.failures.is_empty() {
            return Err(format!(
                "performance regression: {} metric(s) degraded more than {:.0}% vs {path}",
                outcome.failures.len(),
                (1.0 - cgte_bench::check::FAIL_RATIO) * 100.0
            )
            .into());
        }
    }
    Ok(())
}

fn cmd_exact(args: &Args) -> Result<(), CliError> {
    let g = load_graph(args.required("graph")?)?;
    let p = load_partition(args.required("cats")?, g.num_nodes())?;
    let cg = CategoryGraph::exact(&g, &p);
    export(&cg, args)
}

fn cmd_estimate(args: &Args) -> Result<(), CliError> {
    let g = load_graph(args.required("graph")?)?;
    let p = load_partition(args.required("cats")?, g.num_nodes())?;
    let n: usize = args.parse_or("n", 1000)?;
    let seed: u64 = args.parse_or("seed", 42)?;
    let sampler = make_sampler(args.required("sampler")?, args, &g, Some(&p))?;
    let design = match args.get("design").unwrap_or("weighted") {
        "uniform" => Design::Uniform,
        "weighted" => Design::Weighted,
        other => return Err(format!("unknown design {other:?}").into()),
    };
    let size_method = match args.get("sizes").unwrap_or("star") {
        "induced" => SizeMethod::Induced,
        "star" => SizeMethod::Star(StarSizeOptions::default()),
        other => return Err(format!("unknown size method {other:?}").into()),
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let nodes = sampler.sample(&g, n, &mut rng);
    let star = StarSample::observe_sampler(&g, &p, &nodes, &sampler);
    // Uniform designs reinterpret the draw with unit weights — the same
    // rule CategoryGraphEstimator applies internally.
    let star = match design {
        Design::Uniform => star.with_unit_weights(),
        Design::Weighted => star,
    };
    let est = CategoryGraphEstimator::new(design)
        .size_method(size_method)
        .estimate_star(&star, g.num_nodes() as f64);
    eprintln!(
        "estimated category graph: {} categories, {} edges from |S| = {n}",
        est.num_categories(),
        est.num_edges()
    );
    if let Some(level_raw) = args.get("ci") {
        let level: f64 = level_raw
            .parse()
            .map_err(|e| format!("invalid --ci {level_raw:?}: {e}"))?;
        if !(level > 0.0 && level < 1.0) {
            return Err(format!("--ci must be in (0, 1), got {level}").into());
        }
        let reps: usize = args.parse_or("boot", 200)?;
        if reps == 0 {
            return Err("--boot must be positive".into());
        }
        let population = g.num_nodes() as f64;
        let opts = StarSizeOptions::default();
        eprintln!(
            "bootstrap {:.0}% percentile CIs for category sizes ({reps} replicates):",
            level * 100.0
        );
        // One deterministic stream, separate from the sampling stream.
        let mut boot_rng = StdRng::seed_from_u64(seed ^ 0xB007_57AB);
        let induced = matches!(size_method, SizeMethod::Induced).then(|| star.to_induced(&g, &p));
        for c in 0..p.num_categories() as u32 {
            let line = match &induced {
                Some(induced) => cgte_core::bootstrap::bootstrap_induced(
                    induced,
                    reps,
                    level,
                    &mut boot_rng,
                    |s| cgte_core::category_size::induced_size(s, c, population),
                ),
                None => {
                    cgte_core::bootstrap::bootstrap_star(&star, reps, level, &mut boot_rng, |s| {
                        cgte_core::category_size::star_size(s, c, population, &opts)
                    })
                }
            };
            match line {
                Some(s) => eprintln!(
                    "  |C{c}|: mean {:.2}, sd {:.2}, ci [{:.2}, {:.2}] ({} defined replicates)",
                    s.mean, s.std_dev, s.ci.0, s.ci.1, s.replicates
                ),
                None => eprintln!("  |C{c}|: undefined on every replicate"),
            }
        }
    }
    export(&est, args)
}
