//! Multi-process fault tolerance: real `cgte serve` shard processes, a
//! real `cgte cluster` coordinator process, and a real `SIGKILL` — the
//! closest in-tree approximation of the CI cluster-smoke job. The
//! coordinator must finish successfully and verify bit-exact against the
//! single-box reference whether or not the kill lands mid-run (the
//! in-process tests in `cgte-serve` pin the mid-run timing
//! deterministically; this one pins the process plumbing).

#![cfg(unix)]

use cgte_graph::generators::{planted_partition, PlantedConfig};
use cgte_graph::store::{graph_sections, partition_section, Container, Section};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cgte-cli-proc-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_planted(dir: &Path) {
    let mut rng = StdRng::seed_from_u64(1);
    let cfg = PlantedConfig {
        category_sizes: vec![40, 80, 160],
        k: 6,
        alpha: 0.3,
    };
    let pg = planted_partition(&cfg, &mut rng).unwrap();
    let mut c = Container::new();
    c.push(Section::string("meta.kind", "graph"));
    for s in graph_sections(&pg.graph) {
        c.push(s);
    }
    c.push(partition_section("main", &pg.partition));
    let mut w = BufWriter::new(std::fs::File::create(dir.join("planted.cgteg")).unwrap());
    c.write_to(&mut w).unwrap();
    w.flush().unwrap();
}

/// A child process killed on drop, so a failing assert never leaks
/// servers.
struct Reaped(Child);

impl Drop for Reaped {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Boots `cgte serve` on an ephemeral port and parses the bound address
/// from its stderr banner.
fn spawn_shard(dir: &Path) -> (Reaped, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_cgte"))
        .args([
            "serve",
            "--cache-dir",
            dir.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--threads",
            "2",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let mut reader = BufReader::new(child.stderr.take().unwrap());
    let mut line = String::new();
    let addr = loop {
        line.clear();
        assert!(
            reader.read_line(&mut line).unwrap() > 0,
            "shard exited before announcing its address"
        );
        if let Some(rest) = line.split("listening on ").nth(1) {
            break rest.split_whitespace().next().unwrap().to_string();
        }
    };
    // Keep draining stderr so the shard can never block on a full pipe.
    std::thread::spawn(move || {
        let mut sink = Vec::new();
        let _ = reader.read_to_end(&mut sink);
    });
    (Reaped(child), addr)
}

#[test]
fn coordinator_survives_a_sigkilled_shard_process() {
    let dir = temp_store("sigkill");
    write_planted(&dir);
    let (shard_a, addr_a) = spawn_shard(&dir);
    let (mut shard_b, addr_b) = spawn_shard(&dir);

    let coordinator = Command::new(env!("CARGO_BIN_EXE_cgte"))
        .args([
            "cluster",
            "--cache-dir",
            dir.to_str().unwrap(),
            "--graph",
            "planted",
            "--partition",
            "main",
            "--shards",
            &format!("{addr_a},{addr_b}"),
            "--walkers",
            "4",
            "--steps",
            "60000",
            "--batch",
            "200",
            "--snapshot-every",
            "10",
            "--timeout-ms",
            "2000",
            "--retries",
            "4",
            "--verify",
            "true",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();

    // Let the run get going, then SIGKILL one shard outright. If the
    // machine is fast enough that the run already finished, the kill is a
    // no-op and the assertions below still hold.
    std::thread::sleep(Duration::from_millis(300));
    let _ = shard_b.0.kill();
    let _ = shard_b.0.wait();

    let out = coordinator.wait_with_output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "coordinator failed\nstdout: {stdout}\nstderr: {stderr}"
    );
    assert!(stdout.contains("\"verified\":true"), "{stdout}");
    assert!(stdout.contains("\"degraded\":false"), "{stdout}");
    assert!(stdout.contains("\"walkers_completed\":4"), "{stdout}");

    drop(shard_a);
}
