//! The `cgte bench` harness: machine-readable performance trajectory.
//!
//! Times the hot paths at each configured thread count and emits a JSON
//! report (`BENCH_PR10.json` by default) that later PRs append to, so speed
//! claims are pinned from PR to PR rather than asserted in prose:
//!
//! - **build** — edges/sec of every parallel generator (Chung–Lu at
//!   million-node scale is the headline), with a bit-identity check of
//!   each multi-threaded build against the serial (`threads = 1`)
//!   reference;
//! - **load** — edges/sec restoring the headline 1M-node Chung–Lu graph
//!   from its `.cgteg` container versus regenerating it (the disk cache
//!   tier's value proposition; always full-size, even at `--quick`);
//! - **snapshot** — samples/sec serializing an observation stream to its
//!   `.cgtes` session snapshot and restoring it back (write, and
//!   decode + replay), with a bit-identity check of the round trip —
//!   the durability cost of the fault-tolerant serving tier;
//! - **walk** — aggregate RW/MHRW steps/sec with `t` concurrent
//!   independent walkers over the shared CSR;
//! - **estimate** — NRMSE-experiment throughput (replications and
//!   observed samples per second) via `ExperimentConfig::threads`;
//! - **serve** — sustained requests/sec and p50/p99 request latency of
//!   the online estimation service (`cgte-serve`) against the warm
//!   headline graph, at each worker-pool size;
//! - **serve_open** — the open-loop companion: N keep-alive connections
//!   are held open (default 1,000 and 10,000, clamped to the fd budget)
//!   while a small driver pool fires the serve section's request mix at
//!   the closed-loop `t = 1` rate on a deterministic arrival schedule;
//!   per-request latency is measured from the *scheduled* start into
//!   [`cgte_obs::hist`] log2 histograms, so queueing delay counts. A
//!   separate idle leg pins the event engine's headline: process CPU per
//!   parked conn-second with zero traffic, event loop versus the polling
//!   thread-per-connection fallback, reported as a machine-independent
//!   gated ratio;
//! - **cluster** — coordinator wall-clock for a fixed sharded run (4
//!   local shards, 16 walkers) at each `--round-threads` pool size, with
//!   a bit-identity check of every merged stream against the single-box
//!   reference — the "parallel rounds change nothing but the clock"
//!   contract;
//! - **obs** — tracing overhead: the same walk and serve workloads timed
//!   with the tracer disabled and then fully enabled into a
//!   [`cgte_obs::NoopSink`] at detail level. The traced/disabled rate
//!   ratios are internal (both sides from one box, back to back), so the
//!   regression gate always compares them — they pin the claim that
//!   instrumentation costs ~0 when tracing is off.
//!
//! The JSON schema is documented in `EXPERIMENTS.md` (§ benchmark
//! harness). Timings are wall-clock; `available_parallelism` is recorded
//! so a 1-core CI box's flat speedups are interpretable — and so the
//! [`crate::check`] regression gate knows which metrics are comparable
//! across machines.

use cgte_eval::{run_experiment, ExperimentConfig, Target};
use cgte_graph::generators::{
    par_barabasi_albert, par_chung_lu, par_configuration_model_erased, par_gnp,
    par_planted_partition, powerlaw_degree_sequence, powerlaw_weights, scale_to_mean,
    PlantedConfig,
};
use cgte_graph::store::{write_bundle, Loader, Validate};
use cgte_graph::Graph;
use cgte_sampling::{AnySampler, MetropolisHastingsWalk, NodeSampler, RandomWalk};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Options for one benchmark run.
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// CI-sized problem sizes (seconds instead of minutes).
    pub quick: bool,
    /// Base RNG seed for every timed workload.
    pub seed: u64,
    /// Thread counts to measure (the first must be 1 — the serial
    /// reference everything is compared against).
    pub threads: Vec<usize>,
    /// Where to write the JSON report.
    pub out: PathBuf,
    /// Directory for the load section's `.cgteg` store (`--cache-dir`);
    /// a temp directory is used when unset.
    pub cache_dir: Option<PathBuf>,
    /// Node count of the load section's headline graph. The default
    /// (1,000,000) is used even at `--quick` so every committed report
    /// records the huge-tier load-vs-regen ratio; tests shrink it.
    pub load_nodes: usize,
    /// Open-connection counts for the `serve_open` section (clamped to
    /// the process fd budget at run time); tests shrink them.
    pub open_conns: Vec<usize>,
    /// Parked connections for the idle-CPU leg of `serve_open`; tests
    /// shrink it.
    pub idle_conns: usize,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            quick: false,
            seed: 0x2012_5EED,
            threads: vec![1, 2, 8],
            out: PathBuf::from("BENCH_PR10.json"),
            cache_dir: None,
            load_nodes: 1_000_000,
            open_conns: vec![1_000, 10_000],
            idle_conns: 1_000,
        }
    }
}

struct TimedRun {
    threads: usize,
    secs: f64,
    rate: f64,
}

struct BuildEntry {
    generator: String,
    nodes: usize,
    edges: usize,
    runs: Vec<TimedRun>,
    bit_identical: bool,
}

struct WalkEntry {
    sampler: String,
    steps_per_walker: usize,
    runs: Vec<TimedRun>,
}

struct EstimateEntry {
    nodes: usize,
    replications: usize,
    max_size: usize,
    targets: usize,
    runs: Vec<TimedRun>,
}

fn secs(start: Instant) -> f64 {
    start.elapsed().as_secs_f64()
}

/// Serial (threads = 1) measurements are best-of-N: the minimum of a few
/// repetitions approximates the noise-free capability of the machine,
/// which is what the `--check` gate needs — a single-shot timing of a
/// millisecond-scale quick workload swings ±40% with scheduler noise and
/// would fail the gate on phantom regressions. Multi-threaded runs stay
/// single-shot (they only feed `best_speedup`, which never gates on the
/// noisy 1-core case).
const SERIAL_REPS: usize = 3;

/// Runs `f` `reps` times; returns the last result and the minimum
/// wall-clock seconds.
fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let r = f();
        best = best.min(secs(start));
        out = Some(r);
    }
    (out.expect("at least one rep"), best)
}

/// Wall-clock speedup for fixed-size workloads (build, estimate): the
/// same work at every thread count, so time ratios are the right metric.
fn speedup(runs: &[TimedRun]) -> f64 {
    let t1 = runs.iter().find(|r| r.threads == 1);
    let best = runs.iter().map(|r| r.secs).fold(f64::INFINITY, f64::min);
    match t1 {
        Some(r1) if best > 0.0 => r1.secs / best,
        _ => 1.0,
    }
}

/// Throughput speedup for workloads that scale with the thread count
/// (the walk section runs `t` walkers of `steps` each): best aggregate
/// rate over the serial rate. Comparing wall-clock there would divide
/// times of different-sized workloads and could never show scaling.
fn rate_speedup(runs: &[TimedRun]) -> f64 {
    let t1 = runs.iter().find(|r| r.threads == 1);
    let best = runs.iter().map(|r| r.rate).fold(0.0f64, f64::max);
    match t1 {
        Some(r1) if r1.rate > 0.0 => best / r1.rate,
        _ => 1.0,
    }
}

fn bench_build(name: &str, opts: &BenchOptions, build: impl Fn(usize) -> Graph) -> BuildEntry {
    let mut runs = Vec::new();
    let mut reference: Option<Graph> = None;
    let mut identical = true;
    for &t in &opts.threads {
        let reps = if t == 1 { SERIAL_REPS } else { 1 };
        let (g, dt) = best_of(reps, || build(t));
        runs.push(TimedRun {
            threads: t,
            secs: dt,
            rate: g.num_edges() as f64 / dt.max(1e-9),
        });
        match &reference {
            None => reference = Some(g),
            Some(r) => identical &= &g == r,
        }
    }
    let g = reference.expect("at least one thread count");
    eprintln!(
        "build/{name}: {} nodes, {} edges, serial {:.2}s, speedup {:.2}x, bit-identical: {identical}",
        g.num_nodes(),
        g.num_edges(),
        runs[0].secs,
        speedup(&runs),
    );
    BuildEntry {
        generator: name.to_string(),
        nodes: g.num_nodes(),
        edges: g.num_edges(),
        runs,
        bit_identical: identical,
    }
}

fn bench_walks(g: &Graph, opts: &BenchOptions) -> Vec<WalkEntry> {
    // Even at --quick the walk workload must run long enough to time
    // stably (tens of ms is timer + cache-warmth noise, which makes the
    // --check gate flaky on quiet regressions).
    let steps = if opts.quick { 1_000_000 } else { 2_000_000 };
    let samplers: [(&str, AnySampler); 2] = [
        ("rw", AnySampler::Rw(RandomWalk::new())),
        ("mhrw", AnySampler::Mhrw(MetropolisHastingsWalk::new())),
    ];
    samplers
        .into_iter()
        .map(|(name, sampler)| {
            let mut runs = Vec::new();
            for &t in &opts.threads {
                let reps = if t == 1 { SERIAL_REPS } else { 1 };
                let ((), dt) = best_of(reps, || {
                    crossbeam::scope(|scope| {
                        for w in 0..t {
                            let sampler = &sampler;
                            scope.spawn(move |_| {
                                let mut rng = StdRng::seed_from_u64(
                                    opts.seed ^ (w as u64).wrapping_mul(0x9E37_79B9),
                                );
                                let mut buf = Vec::with_capacity(steps);
                                sampler.sample_into(g, steps, &mut rng, &mut buf);
                                buf.len()
                            });
                        }
                    })
                    .expect("walker panicked");
                });
                runs.push(TimedRun {
                    threads: t,
                    secs: dt,
                    rate: (steps * t) as f64 / dt.max(1e-9),
                });
            }
            eprintln!(
                "walk/{name}: {steps} steps/walker, serial {:.0} steps/s",
                runs[0].rate
            );
            WalkEntry {
                sampler: name.to_string(),
                steps_per_walker: steps,
                runs,
            }
        })
        .collect()
}

struct LoadEntry {
    nodes: usize,
    edges: usize,
    write_secs: f64,
    load_secs: f64,
    mmap_secs: f64,
    regen_secs: f64,
    identical: bool,
    mmap_identical: bool,
    mapped: bool,
}

impl LoadEntry {
    fn load_rate(&self) -> f64 {
        self.edges as f64 / self.load_secs.max(1e-9)
    }

    fn mmap_rate(&self) -> f64 {
        self.edges as f64 / self.mmap_secs.max(1e-9)
    }

    fn regen_rate(&self) -> f64 {
        self.edges as f64 / self.regen_secs.max(1e-9)
    }

    /// Load-vs-regenerate speedup — an internal ratio, so it stays
    /// comparable across machines (both timings come from the same box,
    /// and both sides run on a single core).
    fn speedup(&self) -> f64 {
        self.regen_secs / self.load_secs.max(1e-9)
    }

    /// Mapped-vs-heap load speedup — the zero-copy path's headline.
    /// Internal ratio for the same reason as [`LoadEntry::speedup`].
    fn mmap_vs_heap(&self) -> f64 {
        self.load_secs / self.mmap_secs.max(1e-9)
    }
}

/// Times the disk-store round trip of the headline Chung–Lu graph:
/// serialize to `.cgteg`, load it back along the scenario cache's
/// trusted path, regenerate from scratch for comparison, and verify the
/// loaded CSR is bit-identical to the generated one. The graph is built
/// once by the caller and shared with the serve section.
fn bench_load(opts: &BenchOptions, w: &[f64], g: &Graph) -> Result<LoadEntry, String> {
    let n = opts.load_nodes;
    // The fallback directory is per-process: concurrent bench runs (or
    // other users on a shared box) must not truncate each other's store
    // file mid-read.
    let dir = opts.cache_dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("cgte-bench-store-{}", std::process::id()))
    });
    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {dir:?}: {e}"))?;
    let path = dir.join(format!("bench-headline-{n}-{}.cgteg", opts.seed));

    let start = Instant::now();
    let mut out =
        BufWriter::new(File::create(&path).map_err(|e| format!("cannot create {path:?}: {e}"))?);
    write_bundle(&mut out, g, None)
        .and_then(|()| out.flush())
        .map_err(|e| format!("cannot write {path:?}: {e}"))?;
    drop(out);
    let write_secs = secs(start);

    let loader = Loader::open(&path).validate(Validate::Trusted);
    let (loaded, load_secs) = best_of(SERIAL_REPS, || {
        loader
            .clone()
            .load_bundle()
            .map_err(|e| format!("cannot load {path:?}: {e}"))
    });
    let loaded = loaded?;

    // The zero-copy leg: same file, same validation level, through the
    // mapped path. Each rep pays the full mapped-load cost — open, map,
    // checksum verification against the mapped bytes, O(1) CSR checks —
    // so the mmap-vs-heap ratio compares complete loads, not a cached
    // handle. On platforms without mmap support the loader falls back to
    // the heap decode and `mapped` records it.
    let (mapped_graph, mmap_secs) = best_of(SERIAL_REPS, || {
        loader
            .clone()
            .mmap(true)
            .load_graph()
            .map_err(|e| format!("cannot mmap-load {path:?}: {e}"))
    });
    let mapped_graph = mapped_graph?;

    // Regenerate with threads=1: the `.cgteg` load is inherently serial,
    // and the checker treats load-vs-regen as a machine-independent
    // ratio, so both sides must use one core regardless of the host —
    // otherwise the committed ratio would shrink on bigger machines and
    // trip the gate as a phantom regression.
    let (regen, regen_secs) = best_of(SERIAL_REPS, || par_chung_lu(w, opts.seed, 1));

    let identical = loaded.graph == regen && &loaded.graph == g;
    let mmap_identical = mapped_graph == loaded.graph && &mapped_graph == g;
    let entry = LoadEntry {
        nodes: g.num_nodes(),
        edges: g.num_edges(),
        write_secs,
        load_secs,
        mmap_secs,
        regen_secs,
        identical,
        mmap_identical,
        mapped: mapped_graph.is_mapped(),
    };
    eprintln!(
        "load: {} edges, write {:.2}s, load {:.2}s vs regen {:.2}s = {:.1}x, bit-identical: {identical}",
        entry.edges, entry.write_secs, entry.load_secs, entry.regen_secs, entry.speedup(),
    );
    eprintln!(
        "load/mmap: {:.4}s vs heap {:.2}s = {:.1}x, mapped: {}, bit-identical: {mmap_identical}",
        entry.mmap_secs,
        entry.load_secs,
        entry.mmap_vs_heap(),
        entry.mapped,
    );
    if opts.cache_dir.is_none() {
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir(&dir).ok();
    }
    Ok(entry)
}

struct SnapshotEntry {
    nodes: usize,
    categories: usize,
    samples: usize,
    bytes: usize,
    write_secs: f64,
    restore_secs: f64,
    identical: bool,
}

impl SnapshotEntry {
    fn write_rate(&self) -> f64 {
        self.samples as f64 / self.write_secs.max(1e-9)
    }

    fn restore_rate(&self) -> f64 {
        self.samples as f64 / self.restore_secs.max(1e-9)
    }
}

/// Times the `.cgtes` session-snapshot round trip that the fault-tolerant
/// serving tier leans on: serialize a warm observation stream to an
/// in-memory snapshot (what `POST /sessions/{id}/snapshot` writes), then
/// decode and replay it back into a live stream (what a restore after a
/// shard crash does), and verify the round trip is bit-identical. Both
/// sides are inherently serial, so the rates are plain serial
/// throughputs.
fn bench_snapshot(opts: &BenchOptions) -> SnapshotEntry {
    use cgte_graph::store::Container;
    use cgte_sampling::snapshot::{
        read_snapshot, stream_from_container, stream_sections, write_snapshot,
    };
    use cgte_sampling::{DesignKind, ObservationContext, ObservationStream};

    let cfg = PlantedConfig::scaled(if opts.quick { 60 } else { 20 }, 20, 0.5);
    let pg = par_planted_partition(&cfg, opts.seed, 0).expect("feasible planted config");
    let samples = if opts.quick { 50_000 } else { 200_000 };
    let rw = RandomWalk::new();
    let mut rng = StdRng::seed_from_u64(opts.seed ^ 0x5AA7);
    let nodes = rw.sample(&pg.graph, samples, &mut rng);
    let ctx = ObservationContext::new(&pg.graph, &pg.partition);
    let mut stream = ObservationStream::new(pg.partition.num_categories());
    stream.ingest_sampler(&ctx, &nodes, &rw, DesignKind::Weighted);

    let (bytes, write_secs) = best_of(SERIAL_REPS, || {
        let mut c = Container::new();
        for s in stream_sections(&stream) {
            c.push(s);
        }
        let mut buf = Vec::new();
        write_snapshot(&mut buf, &c).expect("in-memory snapshot write");
        buf
    });
    let (restored, restore_secs) = best_of(SERIAL_REPS, || {
        let c = read_snapshot(&bytes[..]).expect("snapshot decodes");
        stream_from_container(&c, &ctx).expect("snapshot restores")
    });
    let entry = SnapshotEntry {
        nodes: pg.graph.num_nodes(),
        categories: pg.partition.num_categories(),
        samples: stream.len(),
        bytes: bytes.len(),
        write_secs,
        restore_secs,
        identical: restored == stream,
    };
    eprintln!(
        "snapshot: {} samples, {} bytes, write {:.0} samples/s, restore {:.0} samples/s, bit-identical: {}",
        entry.samples,
        entry.bytes,
        entry.write_rate(),
        entry.restore_rate(),
        entry.identical,
    );
    entry
}

struct ServeRun {
    threads: usize,
    secs: f64,
    requests: usize,
    rate: f64,
    p50_ms: f64,
    p99_ms: f64,
}

struct ServeEntry {
    nodes: usize,
    edges: usize,
    categories: usize,
    rounds: usize,
    steps_per_ingest: usize,
    runs: Vec<ServeRun>,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Benchmarks the online estimation service against the warm headline
/// graph: a `.cgteg` bundle (graph + top-50 partition) is staged in the
/// store directory, a server is booted per configured worker count, and
/// `t` concurrent keep-alive clients each run a scripted session —
/// `rounds` iterations of (ingest a walk budget, read the estimate) —
/// while every request's wall-clock latency is recorded. Reported:
/// sustained requests/sec plus p50/p99 latency. The server performs zero
/// graph builds (loads only), which is the disk tier's contract.
fn bench_serve(g: &Graph, opts: &BenchOptions) -> Result<ServeEntry, String> {
    use cgte_serve::client::Client;
    use cgte_serve::{ServeConfig, Server};

    let partition = cgte_datasets::standin_partition(
        g,
        50,
        false,
        &mut StdRng::seed_from_u64(opts.seed ^ 0x5E7E),
    );
    let dir = opts.cache_dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("cgte-bench-serve-{}", std::process::id()))
    });
    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {dir:?}: {e}"))?;
    let name = format!("serve-headline-{}-{}", g.num_nodes(), opts.seed);
    let path = dir.join(format!("{name}.cgteg"));
    {
        use cgte_graph::store::{graph_sections, partition_section, Container, Section};
        let mut c = Container::new();
        c.push(Section::string("meta.kind", "graph"));
        for s in graph_sections(g) {
            c.push(s);
        }
        c.push(partition_section("main", &partition));
        let mut out = BufWriter::new(
            File::create(&path).map_err(|e| format!("cannot create {path:?}: {e}"))?,
        );
        c.write_to(&mut out)
            .and_then(|()| out.flush())
            .map_err(|e| format!("cannot write {path:?}: {e}"))?;
    }

    // Thousands of requests per run: with Nagle disabled a request is
    // ~0.1 ms, and the gate needs hundreds of milliseconds of sustained
    // traffic for stable rates and percentiles.
    let rounds = if opts.quick { 1000 } else { 2500 };
    let steps = if opts.quick { 500 } else { 1000 };
    let mut runs = Vec::new();
    for &t in &opts.threads {
        let server = Server::bind(&ServeConfig {
            cache_dir: dir.clone(),
            addr: "127.0.0.1:0".to_string(),
            threads: t,
            ..ServeConfig::default()
        })
        .map_err(|e| format!("cannot bind bench server: {e}"))?;
        let addr = server.addr();
        // Warm the server outside the timed window: the first session
        // loads the graph and builds the shared neighbor-category index.
        {
            let mut c = Client::connect(addr).map_err(|e| e.to_string())?;
            let (st, body) = c
                .request(
                    "POST",
                    "/sessions",
                    &format!("{{\"graph\":\"{name}\",\"sampler\":\"rw\",\"seed\":1}}"),
                )
                .map_err(|e| e.to_string())?;
            if st != 200 {
                return Err(format!("bench warm-up session failed ({st}): {body}"));
            }
            let (st, body) = c
                .request("POST", "/sessions/s0/ingest", "{\"steps\":10}")
                .map_err(|e| e.to_string())?;
            if st != 200 {
                return Err(format!("bench warm-up ingest failed ({st}): {body}"));
            }
        }
        let start = Instant::now();
        let latencies: Vec<Vec<f64>> = crossbeam::scope(|scope| {
            let handles: Vec<_> = (0..t)
                .map(|i| {
                    let name = &name;
                    scope.spawn(move |_| {
                        let mut lat = Vec::with_capacity(2 * rounds + 1);
                        let mut c = Client::connect(addr).expect("bench client connect");
                        let t0 = Instant::now();
                        let (st, body) = c
                            .request(
                                "POST",
                                "/sessions",
                                &format!(
                                    "{{\"graph\":\"{name}\",\"sampler\":\"rw\",\"seed\":{}}}",
                                    1000 + i
                                ),
                            )
                            .expect("open session");
                        lat.push(t0.elapsed().as_secs_f64() * 1e3);
                        assert_eq!(st, 200, "{body}");
                        let id = body
                            .split("\"session\":\"")
                            .nth(1)
                            .and_then(|s| s.split('"').next())
                            .expect("session id")
                            .to_string();
                        for _ in 0..rounds {
                            let t0 = Instant::now();
                            let (st, _) = c
                                .request(
                                    "POST",
                                    &format!("/sessions/{id}/ingest"),
                                    &format!("{{\"steps\":{steps}}}"),
                                )
                                .expect("ingest");
                            lat.push(t0.elapsed().as_secs_f64() * 1e3);
                            assert_eq!(st, 200);
                            let t0 = Instant::now();
                            let (st, _) = c
                                .request("GET", &format!("/sessions/{id}/estimate"), "")
                                .expect("estimate");
                            lat.push(t0.elapsed().as_secs_f64() * 1e3);
                            assert_eq!(st, 200);
                        }
                        lat
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("bench client panicked"))
                .collect()
        })
        .expect("crossbeam scope failed");
        let secs = secs(start);
        server.shutdown();
        server.join();
        let mut all: Vec<f64> = latencies.into_iter().flatten().collect();
        all.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let requests = all.len();
        runs.push(ServeRun {
            threads: t,
            secs,
            requests,
            rate: requests as f64 / secs.max(1e-9),
            p50_ms: percentile(&all, 0.50),
            p99_ms: percentile(&all, 0.99),
        });
    }
    if opts.cache_dir.is_none() {
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir(&dir).ok();
    }
    let first = &runs[0];
    eprintln!(
        "serve: {} nodes, {} cats, {} req @ t=1: {:.0} req/s, p50 {:.2} ms, p99 {:.2} ms",
        g.num_nodes(),
        partition.num_categories(),
        first.requests,
        first.rate,
        first.p50_ms,
        first.p99_ms,
    );
    Ok(ServeEntry {
        nodes: g.num_nodes(),
        edges: g.num_edges(),
        categories: partition.num_categories(),
        rounds,
        steps_per_ingest: steps,
        runs,
    })
}

struct ServeOpenRun {
    requested_conns: usize,
    open_conns: usize,
    requests: usize,
    secs: f64,
    rate: f64,
    p50_ms: f64,
    p99_ms: f64,
}

struct IdleCpu {
    event_conns: usize,
    fallback_conns: usize,
    window_secs: f64,
    idle_poll_ms: u64,
    event_cpu_per_conn_sec: f64,
    fallback_cpu_per_conn_sec: f64,
    /// fallback/event — how many times more CPU a parked connection
    /// costs under the polling fallback. Internal ratio (both sides from
    /// one box within one run), so the gate always compares it.
    ratio: f64,
}

struct ServeOpenEntry {
    target_rps: f64,
    drivers: usize,
    steps_per_ingest: usize,
    runs: Vec<ServeOpenRun>,
    idle: Option<IdleCpu>,
}

/// The soft `RLIMIT_NOFILE` from `/proc/self/limits`, if readable.
fn fd_soft_limit() -> Option<usize> {
    let limits = std::fs::read_to_string("/proc/self/limits").ok()?;
    let line = limits.lines().find(|l| l.starts_with("Max open files"))?;
    line.split_whitespace().nth(3)?.parse().ok()
}

/// Cumulative user+system CPU seconds of this process, from
/// `/proc/self/stat` (utime + stime, USER_HZ = 100 on every Linux ABI
/// the harness targets).
fn process_cpu_secs() -> Option<f64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    let (_, rest) = stat.rsplit_once(')')?;
    let fields: Vec<&str> = rest.split_whitespace().collect();
    let utime: u64 = fields.get(11)?.parse().ok()?;
    let stime: u64 = fields.get(12)?.parse().ok()?;
    Some((utime + stime) as f64 / 100.0)
}

/// Opens up to `n` idle keep-alive connections, stopping early (without
/// failing) when the fd budget runs out.
fn open_idle_conns(addr: std::net::SocketAddr, n: usize) -> Vec<std::net::TcpStream> {
    let mut conns = Vec::with_capacity(n);
    for _ in 0..n {
        match std::net::TcpStream::connect(addr) {
            Ok(s) => conns.push(s),
            Err(_) => break, // EMFILE or backlog pressure: run with what we got
        }
    }
    conns
}

/// Polls `/healthz` until the server-side open-connection gauge reaches
/// `want` (or a timeout passes) so measurements start only after every
/// client-side connect has actually been accepted.
fn wait_for_connections(addr: std::net::SocketAddr, want: usize) -> Result<(), String> {
    use cgte_serve::client::Client;
    let timeout = Duration::from_millis(500);
    let connect = || -> Result<Client, String> {
        let c = Client::connect(addr).map_err(|e| e.to_string())?;
        // A bounded read: a fallback-engine server with every worker
        // pinned can never answer this poll, and an unbounded read
        // would turn that into a deadlock instead of the Err below.
        c.set_read_timeout(Some(timeout))
            .map_err(|e| e.to_string())?;
        Ok(c)
    };
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut c = connect()?;
    let mut last = 0usize;
    loop {
        match c.request("GET", "/healthz", "") {
            Ok((200, body)) => {
                let gauge = body
                    .split("\"connections\":")
                    .nth(1)
                    .and_then(|s| s.split(|c: char| !c.is_ascii_digit()).next())
                    .and_then(|s| s.parse::<usize>().ok())
                    .ok_or_else(|| format!("no connections gauge in {body}"))?;
                if gauge >= want {
                    return Ok(());
                }
                last = gauge;
            }
            Ok((st, body)) => return Err(format!("healthz failed ({st}): {body}")),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Mid-response timeout desynchronizes the stream — start
                // a fresh connection for the next attempt.
                c = connect()?;
            }
            Err(e) => return Err(format!("healthz poll failed: {e}")),
        }
        if Instant::now() > deadline {
            return Err(format!("only {last}/{want} connections accepted"));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Measures process CPU over an idle window with `conns` parked
/// connections against a freshly booted server, best (minimum) of two
/// windows, floored at one scheduler tick. Returns CPU seconds per
/// connection-second.
fn idle_cpu_per_conn_sec(
    cfg: &cgte_serve::ServeConfig,
    conns: usize,
    window: Duration,
) -> Result<f64, String> {
    use cgte_serve::Server;
    let server = Server::bind(cfg).map_err(|e| format!("cannot bind idle server: {e}"))?;
    let addr = server.addr();
    let parked = open_idle_conns(addr, conns);
    if parked.len() < conns {
        return Err(format!(
            "only {}/{conns} idle connections opened",
            parked.len()
        ));
    }
    wait_for_connections(addr, conns)?;
    // Let accept bursts, gauge polls and allocator churn settle.
    std::thread::sleep(Duration::from_millis(300));
    let mut best = f64::INFINITY;
    for _ in 0..2 {
        let c0 = process_cpu_secs().ok_or("no /proc/self/stat")?;
        std::thread::sleep(window);
        let c1 = process_cpu_secs().ok_or("no /proc/self/stat")?;
        best = best.min(c1 - c0);
    }
    drop(parked);
    server.shutdown();
    server.join();
    // One USER_HZ tick is the measurement resolution: a side that uses
    // less CPU than that reads as exactly one tick, which keeps the
    // fallback/event ratio finite and conservative.
    Ok(best.max(0.01) / (conns as f64 * window.as_secs_f64()))
}

/// The open-loop load section: holds `opts.open_conns` keep-alive
/// connections open while 4 driver threads replay the serve section's
/// request mix at the closed-loop `t = 1` rate (`target_rps`) on a
/// deterministic arrival schedule — request `k` fires at `t0 + k/rate`,
/// and its latency is measured from that scheduled instant into a
/// [`cgte_obs::hist::Histogram`] (µs buckets), so a server that falls
/// behind accrues queueing delay instead of quietly slowing the clients.
/// The idle leg then compares parked-connection CPU between the event
/// engine and the polling fallback with zero traffic.
fn bench_serve_open(
    g: &Graph,
    opts: &BenchOptions,
    target_rps: f64,
    steps: usize,
) -> Result<ServeOpenEntry, String> {
    use cgte_obs::hist::Histogram;
    use cgte_serve::client::Client;
    use cgte_serve::{ServeConfig, Server};

    let partition = cgte_datasets::standin_partition(
        g,
        50,
        false,
        &mut StdRng::seed_from_u64(opts.seed ^ 0x5E7E),
    );
    let dir = opts.cache_dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("cgte-bench-serveopen-{}", std::process::id()))
    });
    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {dir:?}: {e}"))?;
    let name = format!("serveopen-headline-{}-{}", g.num_nodes(), opts.seed);
    let path = dir.join(format!("{name}.cgteg"));
    {
        use cgte_graph::store::{graph_sections, partition_section, Container, Section};
        let mut c = Container::new();
        c.push(Section::string("meta.kind", "graph"));
        for s in graph_sections(g) {
            c.push(s);
        }
        c.push(partition_section("main", &partition));
        let mut out = BufWriter::new(
            File::create(&path).map_err(|e| format!("cannot create {path:?}: {e}"))?,
        );
        c.write_to(&mut out)
            .and_then(|()| out.flush())
            .map_err(|e| format!("cannot write {path:?}: {e}"))?;
    }

    // Each connection costs two fds in-process (client + server side);
    // leave headroom for the store, the report and epoll plumbing.
    let fd_budget = fd_soft_limit()
        .map(|soft| soft.saturating_sub(256) / 2)
        .unwrap_or(usize::MAX);
    let drivers = 4usize;
    let rate = target_rps.max(50.0);
    // Enough requests for a stable rate, bounded so an overload (server
    // slower than the schedule) cannot run the section for minutes.
    let requests = ((rate * 2.0) as usize).clamp(400, 8_000);
    let per_driver = requests.div_ceil(drivers);

    // Parked connections pin a worker each on the thread-per-connection
    // fallback, so the open-conns population (and the idle-CPU leg) is
    // only meaningful where the event engine is actually engaged — probe
    // once up front.
    let event_engaged = {
        let probe = Server::bind(&ServeConfig {
            cache_dir: dir.clone(),
            addr: "127.0.0.1:0".to_string(),
            threads: 1,
            ..ServeConfig::default()
        })
        .map_err(|e| format!("cannot bind probe server: {e}"))?;
        let mut c = Client::connect(probe.addr()).map_err(|e| e.to_string())?;
        let (_, body) = c
            .request("GET", "/healthz", "")
            .map_err(|e| e.to_string())?;
        probe.shutdown();
        probe.join();
        body.contains("\"event_loop\":true")
    };
    if !event_engaged {
        eprintln!(
            "serve_open: event engine not engaged — running the open-loop schedule without parked connections"
        );
    }

    let mut runs = Vec::new();
    for &requested in &opts.open_conns {
        let conns_target = requested.min(fd_budget);
        let server = Server::bind(&ServeConfig {
            cache_dir: dir.clone(),
            addr: "127.0.0.1:0".to_string(),
            // The fallback pins one worker per connection: without the
            // event engine the drivers themselves need the workers, and
            // parking extra connections would only starve them.
            threads: if event_engaged { 2 } else { drivers },
            ..ServeConfig::default()
        })
        .map_err(|e| format!("cannot bind serve_open server: {e}"))?;
        let addr = server.addr();
        // Warm the graph + index outside the timed window.
        {
            let mut c = Client::connect(addr).map_err(|e| e.to_string())?;
            let (st, body) = c
                .request(
                    "POST",
                    "/sessions",
                    &format!("{{\"graph\":\"{name}\",\"sampler\":\"rw\",\"seed\":1}}"),
                )
                .map_err(|e| e.to_string())?;
            if st != 200 {
                return Err(format!("serve_open warm-up failed ({st}): {body}"));
            }
            let (st, _) = c
                .request("POST", "/sessions/s0/ingest", "{\"steps\":10}")
                .map_err(|e| e.to_string())?;
            if st != 200 {
                return Err(format!("serve_open warm-up ingest failed ({st})"));
            }
        }
        // Park the open-connection population (minus the driver conns).
        let parked = if event_engaged {
            open_idle_conns(addr, conns_target.saturating_sub(drivers))
        } else {
            Vec::new()
        };
        let open_conns = parked.len() + drivers;
        wait_for_connections(addr, parked.len())?;

        let t0 = Instant::now();
        let hists: Vec<Histogram> = crossbeam::scope(|scope| {
            let handles: Vec<_> = (0..drivers)
                .map(|i| {
                    let name = &name;
                    scope.spawn(move |_| {
                        let mut hist = Histogram::new();
                        let mut c = Client::connect(addr).expect("driver connect");
                        let (st, body) = c
                            .request(
                                "POST",
                                "/sessions",
                                &format!(
                                    "{{\"graph\":\"{name}\",\"sampler\":\"rw\",\"seed\":{}}}",
                                    2000 + i
                                ),
                            )
                            .expect("driver session");
                        assert_eq!(st, 200, "{body}");
                        let id = body
                            .split("\"session\":\"")
                            .nth(1)
                            .and_then(|s| s.split('"').next())
                            .expect("session id")
                            .to_string();
                        for j in 0..per_driver {
                            // Global arrival schedule, interleaved
                            // across drivers: request k fires at k/rate.
                            let k = j * drivers + i;
                            let sched = t0 + Duration::from_secs_f64(k as f64 / rate);
                            let now = Instant::now();
                            if sched > now {
                                std::thread::sleep(sched - now);
                            }
                            let (st, _) = if j % 2 == 0 {
                                c.request(
                                    "POST",
                                    &format!("/sessions/{id}/ingest"),
                                    &format!("{{\"steps\":{steps}}}"),
                                )
                                .expect("driver ingest")
                            } else {
                                c.request("GET", &format!("/sessions/{id}/estimate"), "")
                                    .expect("driver estimate")
                            };
                            assert_eq!(st, 200);
                            hist.record(sched.elapsed().as_micros() as u64);
                        }
                        hist
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("driver panicked"))
                .collect()
        })
        .expect("crossbeam scope failed");
        let secs = secs(t0);
        drop(parked);
        server.shutdown();
        server.join();
        let mut merged = Histogram::new();
        for h in &hists {
            merged.merge(h);
        }
        let total = merged.count() as usize;
        let run = ServeOpenRun {
            requested_conns: requested,
            open_conns,
            requests: total,
            secs,
            rate: total as f64 / secs.max(1e-9),
            p50_ms: merged.quantile(0.50) as f64 / 1e3,
            p99_ms: merged.quantile(0.99) as f64 / 1e3,
        };
        eprintln!(
            "serve_open: {} conns ({} requested), {} req @ target {:.0} req/s: {:.0} req/s, p50 {:.2} ms, p99 {:.2} ms",
            run.open_conns, requested, run.requests, rate, run.rate, run.p50_ms, run.p99_ms,
        );
        runs.push(run);
    }

    // --- idle-CPU leg: parked connections, zero traffic -------------------
    // Both engines get the same configured shutdown responsiveness
    // (idle_poll_ms): the fallback *must* wake every parked worker that
    // often, the event loop simply has no poll at all.
    let idle_poll_ms = 50;
    let window = Duration::from_secs(2);
    let event_conns = opts.idle_conns.min(fd_budget);
    let fallback_conns = opts.idle_conns.min(256).min(fd_budget);
    let base = ServeConfig {
        cache_dir: dir.clone(),
        addr: "127.0.0.1:0".to_string(),
        idle_poll_ms,
        ..ServeConfig::default()
    };
    // Only meaningful where the event engine is actually compiled in and
    // engaged (probed once above); elsewhere both sides would time the
    // same fallback.
    let idle = if event_engaged && process_cpu_secs().is_some() {
        let event = idle_cpu_per_conn_sec(
            &ServeConfig {
                threads: 2,
                event_loop: true,
                ..base.clone()
            },
            event_conns,
            window,
        )?;
        let fallback = idle_cpu_per_conn_sec(
            &ServeConfig {
                // One spare worker beyond the parked population: it
                // answers the readiness gauge poll (the parked conns pin
                // the rest) and then sits blocked on the dispatch
                // channel — no polling, so it adds nothing to the
                // measured idle CPU.
                threads: fallback_conns + 1,
                event_loop: false,
                ..base
            },
            fallback_conns,
            window,
        )?;
        let idle = IdleCpu {
            event_conns,
            fallback_conns,
            window_secs: window.as_secs_f64(),
            idle_poll_ms,
            event_cpu_per_conn_sec: event,
            fallback_cpu_per_conn_sec: fallback,
            ratio: fallback / event.max(1e-12),
        };
        eprintln!(
            "serve_open/idle: event {:.2e} cpu-s/conn-s ({} conns) vs fallback {:.2e} ({} conns) = {:.1}x",
            idle.event_cpu_per_conn_sec,
            idle.event_conns,
            idle.fallback_cpu_per_conn_sec,
            idle.fallback_conns,
            idle.ratio,
        );
        Some(idle)
    } else {
        eprintln!("serve_open/idle: skipped (event engine not engaged on this platform)");
        None
    };

    if opts.cache_dir.is_none() {
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir(&dir).ok();
    }
    Ok(ServeOpenEntry {
        target_rps: rate,
        drivers,
        steps_per_ingest: steps,
        runs,
        idle,
    })
}

struct ClusterEntry {
    shards: usize,
    walkers: usize,
    steps_per_walker: usize,
    batch: usize,
    bit_identical: bool,
    runs: Vec<TimedRun>,
}

/// Benchmarks the sharded coordinator: a fixed workload (16 walkers over
/// 4 local shards, every shard a real `cgte-serve` process-internal
/// server on its own port) driven once per configured `--round-threads`
/// pool size. The workload is identical at every pool size — placement,
/// merging and checkpoint cadence all live on the coordinator thread —
/// so wall-clock ratios are the right scaling metric, and every merged
/// stream is checked bit-identical against [`single_box_reference`].
///
/// [`single_box_reference`]: cgte_serve::cluster::single_box_reference
fn bench_cluster(opts: &BenchOptions) -> Result<ClusterEntry, String> {
    use cgte_sampling::ObservationContext;
    use cgte_serve::cluster::{run_cluster, single_box_reference, ClusterConfig, RetryPolicy};
    use cgte_serve::{ServeConfig, Server};

    // Even at --quick the run must drive enough HTTP round trips to time
    // stably (a few hundred requests; a tens-of-ms window is timer noise
    // and would make the --check gate flaky).
    let shards_n = 4;
    let walkers = 16;
    let steps = if opts.quick { 4_000 } else { 12_000 };
    let batch = if opts.quick { 250 } else { 500 };

    let pcfg = PlantedConfig::scaled(if opts.quick { 60 } else { 20 }, 20, 0.5);
    let pg = par_planted_partition(&pcfg, opts.seed, 0).expect("feasible planted config");
    let dir = opts.cache_dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("cgte-bench-cluster-{}", std::process::id()))
    });
    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {dir:?}: {e}"))?;
    let name = format!("cluster-planted-{}-{}", pg.graph.num_nodes(), opts.seed);
    let path = dir.join(format!("{name}.cgteg"));
    {
        use cgte_graph::store::{graph_sections, partition_section, Container, Section};
        let mut c = Container::new();
        c.push(Section::string("meta.kind", "graph"));
        for s in graph_sections(&pg.graph) {
            c.push(s);
        }
        c.push(partition_section("main", &pg.partition));
        let mut out = BufWriter::new(
            File::create(&path).map_err(|e| format!("cannot create {path:?}: {e}"))?,
        );
        c.write_to(&mut out)
            .and_then(|()| out.flush())
            .map_err(|e| format!("cannot write {path:?}: {e}"))?;
    }

    let servers: Vec<Server> = (0..shards_n)
        .map(|_| {
            Server::bind(&ServeConfig {
                cache_dir: dir.clone(),
                addr: "127.0.0.1:0".to_string(),
                threads: 2,
                ..ServeConfig::default()
            })
            .map_err(|e| format!("cannot bind bench shard: {e}"))
        })
        .collect::<Result<_, _>>()?;
    let addrs: Vec<String> = servers.iter().map(|s| s.addr().to_string()).collect();

    let cfg = ClusterConfig {
        partition: Some("main".to_string()),
        walkers,
        steps_per_walker: steps,
        batch,
        snapshot_every: 2,
        seed: opts.seed,
        policy: RetryPolicy {
            request_timeout: Duration::from_secs(10),
            ..RetryPolicy::default()
        },
        ..ClusterConfig::new(&name)
    };
    let ctx = ObservationContext::new(&pg.graph, &pg.partition);
    let reference =
        single_box_reference(&cfg, &pg.graph, &pg.partition, &ctx).map_err(|e| e.to_string())?;

    // Warm every shard (graph load + neighbor-category index) outside the
    // timed windows with a one-round mini-run.
    {
        let mut warm = cfg.clone();
        warm.walkers = shards_n;
        warm.steps_per_walker = batch;
        run_cluster(&warm, &addrs, &ctx).map_err(|e| format!("cluster warm-up failed: {e}"))?;
    }

    let mut runs = Vec::new();
    let mut identical = true;
    for &t in &opts.threads {
        let mut cfg_t = cfg.clone();
        cfg_t.round_threads = t;
        let reps = if t == 1 { SERIAL_REPS } else { 1 };
        let (run, dt) = best_of(reps, || run_cluster(&cfg_t, &addrs, &ctx));
        let run = run.map_err(|e| format!("cluster bench run failed: {e}"))?;
        if run.degraded || run.shards_alive != shards_n {
            return Err(format!(
                "cluster bench degraded: {}/{} walkers, {}/{} shards",
                run.walkers_completed, walkers, run.shards_alive, shards_n
            ));
        }
        identical &= run.stream == reference;
        runs.push(TimedRun {
            threads: t,
            secs: dt,
            rate: (walkers * steps) as f64 / dt.max(1e-9),
        });
    }
    for s in servers {
        s.shutdown();
        s.join();
    }
    if opts.cache_dir.is_none() {
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir(&dir).ok();
    }
    let entry = ClusterEntry {
        shards: shards_n,
        walkers,
        steps_per_walker: steps,
        batch,
        bit_identical: identical,
        runs,
    };
    eprintln!(
        "cluster: {shards_n} shards × {walkers} walkers, serial {:.2}s, speedup {:.2}x, bit-identical: {identical}",
        entry.runs[0].secs,
        speedup(&entry.runs),
    );
    Ok(entry)
}

fn bench_estimate(opts: &BenchOptions) -> EstimateEntry {
    // A laptop-scale planted graph: estimate throughput is dominated by
    // walking + observation, not graph size.
    let scale_div = if opts.quick { 60 } else { 10 };
    let cfg = PlantedConfig::scaled(scale_div, 20, 0.5);
    let pg = par_planted_partition(&cfg, opts.seed, 0).expect("feasible planted config");
    let sizes = if opts.quick {
        vec![100, 500]
    } else {
        vec![100, 1_000, 10_000]
    };
    let max_size = *sizes.iter().max().unwrap();
    let replications = if opts.quick { 8 } else { 40 };
    let ncat = pg.partition.num_categories() as u32;
    let targets: Vec<Target> = (0..ncat).map(Target::Size).collect();
    let sampler = AnySampler::Rw(RandomWalk::new().burn_in(max_size / 10));
    let mut runs = Vec::new();
    for &t in &opts.threads {
        let cfg = ExperimentConfig::new(sizes.clone(), replications)
            .seed(opts.seed)
            .threads(t);
        let reps = if t == 1 { SERIAL_REPS } else { 1 };
        let (res, dt) = best_of(reps, || {
            run_experiment(&pg.graph, &pg.partition, &sampler, &targets, &cfg)
        });
        assert!(!res.entries().is_empty(), "experiment produced no series");
        runs.push(TimedRun {
            threads: t,
            secs: dt,
            rate: (replications * max_size) as f64 / dt.max(1e-9),
        });
    }
    eprintln!(
        "estimate: {} nodes, {replications} reps × |S|={max_size}, serial {:.0} samples/s",
        pg.graph.num_nodes(),
        runs[0].rate
    );
    EstimateEntry {
        nodes: pg.graph.num_nodes(),
        replications,
        max_size,
        targets: targets.len(),
        runs,
    }
}

/// One workload timed twice: tracer fully disabled (level 0, the
/// production default) and fully enabled into a [`cgte_obs::NoopSink`]
/// at [`cgte_obs::LEVEL_DETAIL`]. The noop-sink run is a *superset* of
/// the disabled run's work — every level gate passes and every record is
/// rendered — so `traced_ratio ≈ 1` bounds the disabled-tracing overhead
/// from above.
struct ObsWorkload {
    off_secs: f64,
    traced_secs: f64,
    off_rate: f64,
    traced_rate: f64,
}

impl ObsWorkload {
    /// Traced rate over disabled rate — an internal ratio (both sides
    /// from one box within one run), so the gate always compares it.
    fn traced_ratio(&self) -> f64 {
        self.traced_rate / self.off_rate.max(1e-9)
    }
}

struct ObsEntry {
    walk_steps: usize,
    walk: ObsWorkload,
    serve_rounds: usize,
    serve_requests: usize,
    serve: ObsWorkload,
}

/// Measures the tracing tax on the two hot paths the ISSUE pins: raw
/// walk steps/sec (the sampler inner loop runs under serve's request
/// spans) and serve requests/sec (every request opens a span and ingest
/// emits a `serve.walk` event). Runs **last** in the harness: it
/// installs a process-global sink, and although it shuts the tracer down
/// afterwards, no other section should ever time against a live tracer.
fn bench_obs(g: &Graph, opts: &BenchOptions) -> Result<ObsEntry, String> {
    use cgte_serve::client::Client;
    use cgte_serve::{ServeConfig, Server};

    assert_eq!(cgte_obs::level(), 0, "tracer must start disabled");

    // --- walk steps/sec, disabled vs noop-traced -------------------------
    // 4× the walk section's budget: the two sides differ by a couple of
    // percent at most, so each timed window must be hundreds of
    // milliseconds for the ratio to be signal rather than scheduler
    // noise (the gate compares it across PRs).
    let steps = if opts.quick { 4_000_000 } else { 8_000_000 };
    let reps = SERIAL_REPS + 2;
    let sampler = RandomWalk::new();
    let run_walk = || {
        let mut rng = StdRng::seed_from_u64(opts.seed ^ 0x0B5);
        let mut buf = Vec::with_capacity(steps);
        sampler.sample_into(g, steps, &mut rng, &mut buf);
        buf.len()
    };
    let (_, walk_off_secs) = best_of(reps, run_walk);
    cgte_obs::install(
        std::sync::Arc::new(cgte_obs::NoopSink),
        cgte_obs::LEVEL_DETAIL,
    );
    let (_, walk_traced_secs) = best_of(reps, run_walk);
    cgte_obs::shutdown();
    let walk = ObsWorkload {
        off_secs: walk_off_secs,
        traced_secs: walk_traced_secs,
        off_rate: steps as f64 / walk_off_secs.max(1e-9),
        traced_rate: steps as f64 / walk_traced_secs.max(1e-9),
    };

    // --- serve requests/sec, disabled vs noop-traced ---------------------
    // A small planted graph keeps this section seconds-scale: the point
    // is the per-request delta, which is size-independent.
    let cfg = PlantedConfig::scaled(if opts.quick { 60 } else { 20 }, 20, 0.5);
    let pg = par_planted_partition(&cfg, opts.seed, 0).expect("feasible planted config");
    let dir = opts.cache_dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("cgte-bench-obs-{}", std::process::id()))
    });
    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {dir:?}: {e}"))?;
    let name = format!("obs-planted-{}-{}", pg.graph.num_nodes(), opts.seed);
    let path = dir.join(format!("{name}.cgteg"));
    {
        use cgte_graph::store::{graph_sections, partition_section, Container, Section};
        let mut c = Container::new();
        c.push(Section::string("meta.kind", "graph"));
        for s in graph_sections(&pg.graph) {
            c.push(s);
        }
        c.push(partition_section("main", &pg.partition));
        let mut out = BufWriter::new(
            File::create(&path).map_err(|e| format!("cannot create {path:?}: {e}"))?,
        );
        c.write_to(&mut out)
            .and_then(|()| out.flush())
            .map_err(|e| format!("cannot write {path:?}: {e}"))?;
    }

    let rounds = if opts.quick { 400 } else { 1200 };
    let server = Server::bind(&ServeConfig {
        cache_dir: dir.clone(),
        addr: "127.0.0.1:0".to_string(),
        threads: 1,
        ..ServeConfig::default()
    })
    .map_err(|e| format!("cannot bind obs bench server: {e}"))?;
    let addr = server.addr();
    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
    // One scripted session: open, then `rounds` × (ingest, estimate).
    // Returns the request count so rates stay honest if the shape shifts.
    let mut run_serve = |seed: u64| -> Result<usize, String> {
        let (st, body) = client
            .request(
                "POST",
                "/sessions",
                &format!("{{\"graph\":\"{name}\",\"sampler\":\"rw\",\"seed\":{seed}}}"),
            )
            .map_err(|e| e.to_string())?;
        if st != 200 {
            return Err(format!("obs bench session failed ({st}): {body}"));
        }
        let id = body
            .split("\"session\":\"")
            .nth(1)
            .and_then(|s| s.split('"').next())
            .ok_or("no session id in response")?
            .to_string();
        let mut requests = 1;
        for _ in 0..rounds {
            let (st, _) = client
                .request("POST", &format!("/sessions/{id}/ingest"), "{\"steps\":200}")
                .map_err(|e| e.to_string())?;
            if st != 200 {
                return Err(format!("obs bench ingest failed ({st})"));
            }
            let (st, _) = client
                .request("GET", &format!("/sessions/{id}/estimate"), "")
                .map_err(|e| e.to_string())?;
            if st != 200 {
                return Err(format!("obs bench estimate failed ({st})"));
            }
            requests += 2;
        }
        Ok(requests)
    };
    // Warm-up (graph load + neighbor-category index) outside both windows.
    run_serve(1)?;
    let (requests, serve_off_secs) = best_of(SERIAL_REPS, || run_serve(100));
    let requests = requests?;
    cgte_obs::install(
        std::sync::Arc::new(cgte_obs::NoopSink),
        cgte_obs::LEVEL_DETAIL,
    );
    let (traced_requests, serve_traced_secs) = best_of(SERIAL_REPS, || run_serve(200));
    cgte_obs::shutdown();
    let traced_requests = traced_requests?;
    assert_eq!(requests, traced_requests, "identical request scripts");
    server.shutdown();
    server.join();
    if opts.cache_dir.is_none() {
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir(&dir).ok();
    }
    let serve = ObsWorkload {
        off_secs: serve_off_secs,
        traced_secs: serve_traced_secs,
        off_rate: requests as f64 / serve_off_secs.max(1e-9),
        traced_rate: requests as f64 / serve_traced_secs.max(1e-9),
    };
    let entry = ObsEntry {
        walk_steps: steps,
        walk,
        serve_rounds: rounds,
        serve_requests: requests,
        serve,
    };
    eprintln!(
        "obs: walk {:.0} steps/s off vs {:.0} traced (ratio {:.3}); serve {:.0} req/s off vs {:.0} traced (ratio {:.3})",
        entry.walk.off_rate,
        entry.walk.traced_rate,
        entry.walk.traced_ratio(),
        entry.serve.off_rate,
        entry.serve.traced_rate,
        entry.serve.traced_ratio(),
    );
    Ok(entry)
}

fn runs_json(runs: &[TimedRun], rate_key: &str) -> String {
    let items: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "{{\"threads\":{},\"secs\":{:.6},\"{rate_key}\":{:.1}}}",
                r.threads, r.secs, r.rate
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}

/// Runs the full harness and writes the JSON report. Returns the JSON.
pub fn run_bench(opts: &BenchOptions) -> Result<String, String> {
    assert!(
        opts.threads.first() == Some(&1),
        "the first thread count must be 1 (the serial reference)"
    );
    assert!(
        opts.threads.iter().all(|&t| t >= 1),
        "thread counts must be positive"
    );
    let seed = opts.seed;
    let quick = opts.quick;

    // --- build rates ------------------------------------------------------
    let cl_n = if quick { 100_000 } else { 1_000_000 };
    let mut w = powerlaw_weights(
        cl_n,
        2.5,
        2.0,
        (cl_n as f64).sqrt(),
        &mut StdRng::seed_from_u64(seed),
    );
    scale_to_mean(&mut w, 10.0);
    let mut builds = Vec::new();
    builds.push(bench_build("chung_lu", opts, |t| par_chung_lu(&w, seed, t)));
    let gnp_n = if quick { 100_000 } else { 1_000_000 };
    builds.push(bench_build("gnp", opts, |t| {
        par_gnp(gnp_n, 10.0 / gnp_n as f64, seed, t)
    }));
    let ba_n = if quick { 30_000 } else { 300_000 };
    builds.push(bench_build("barabasi_albert", opts, |t| {
        par_barabasi_albert(ba_n, 4, seed, t).expect("valid BA parameters")
    }));
    let cm_n = if quick { 30_000 } else { 300_000 };
    let mut deg = powerlaw_degree_sequence(cm_n, 2.5, 2, 200, &mut StdRng::seed_from_u64(seed));
    if deg.iter().sum::<usize>() % 2 != 0 {
        deg[0] += 1;
    }
    builds.push(bench_build("configuration", opts, |t| {
        par_configuration_model_erased(&deg, seed, t).expect("even degree sum")
    }));
    let planted_cfg = if quick {
        PlantedConfig::scaled(30, 10, 0.5)
    } else {
        PlantedConfig::scaled_up(3, 10, 0.5)
    };
    builds.push(bench_build("planted", opts, |t| {
        par_planted_partition(&planted_cfg, seed, t)
            .expect("feasible planted config")
            .graph
    }));

    // --- walk + estimate throughput --------------------------------------
    let walk_graph = par_chung_lu(&w, seed, 0);
    let walks = bench_walks(&walk_graph, opts);
    let estimate = bench_estimate(opts);

    // --- headline graph (always full-size, even at --quick) ---------------
    // Built once, shared by the load and serve sections.
    let mut headline_w = powerlaw_weights(
        opts.load_nodes,
        2.5,
        2.0,
        (opts.load_nodes as f64).sqrt(),
        &mut StdRng::seed_from_u64(seed),
    );
    scale_to_mean(&mut headline_w, 10.0);
    let headline = par_chung_lu(&headline_w, seed, 0);

    // --- disk-store load throughput ---------------------------------------
    let load = bench_load(opts, &headline_w, &headline)?;

    // --- session-snapshot round-trip throughput ---------------------------
    let snapshot = bench_snapshot(opts);

    // --- serve request throughput + latency -------------------------------
    let serve = bench_serve(&headline, opts)?;

    // --- open-loop load at high connection counts -------------------------
    let closed_loop_rate = serve
        .runs
        .iter()
        .find(|r| r.threads == 1)
        .map(|r| r.rate)
        .unwrap_or(0.0);
    let serve_open = bench_serve_open(&headline, opts, closed_loop_rate, serve.steps_per_ingest)?;

    // --- sharded coordinator wall-clock at each round-pool size -----------
    let cluster = bench_cluster(opts)?;

    // --- tracing overhead (must run last: installs the global tracer) -----
    let obs = bench_obs(&walk_graph, opts)?;

    // --- report -----------------------------------------------------------
    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"schema\": \"cgte-bench/1\",\n  \"pr\": \"PR10\",\n  \"quick\": {},\n  \"seed\": {},\n  \"available_parallelism\": {},\n  \"threads\": [{}],\n",
        quick,
        seed,
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
        opts.threads
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(",")
    );
    json.push_str("  \"build\": [\n");
    for (i, b) in builds.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"generator\":\"{}\",\"nodes\":{},\"edges\":{},\"bit_identical\":{},\"best_speedup\":{:.3},\"runs\":{}}}{}",
            b.generator,
            b.nodes,
            b.edges,
            b.bit_identical,
            speedup(&b.runs),
            runs_json(&b.runs, "edges_per_sec"),
            if i + 1 < builds.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n  \"walk\": [\n");
    for (i, e) in walks.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"sampler\":\"{}\",\"steps_per_walker\":{},\"best_speedup\":{:.3},\"runs\":{}}}{}",
            e.sampler,
            e.steps_per_walker,
            rate_speedup(&e.runs),
            runs_json(&e.runs, "steps_per_sec"),
            if i + 1 < walks.len() { "," } else { "" }
        );
    }
    let _ = write!(
        json,
        "  ],\n  \"estimate\": {{\"nodes\":{},\"replications\":{},\"max_size\":{},\"targets\":{},\"best_speedup\":{:.3},\"runs\":{}}},\n",
        estimate.nodes,
        estimate.replications,
        estimate.max_size,
        estimate.targets,
        speedup(&estimate.runs),
        runs_json(&estimate.runs, "samples_per_sec"),
    );
    let _ = writeln!(
        json,
        "  \"load\": {{\"generator\":\"chung_lu\",\"nodes\":{},\"edges\":{},\"write_secs\":{:.6},\"load_secs\":{:.6},\"mmap_secs\":{:.6},\"regen_secs\":{:.6},\"load_edges_per_sec\":{:.1},\"mmap_edges_per_sec\":{:.1},\"regen_edges_per_sec\":{:.1},\"speedup_vs_regen\":{:.3},\"mmap_vs_heap\":{:.3},\"identical\":{},\"mmap_identical\":{},\"mapped\":{}}},",
        load.nodes,
        load.edges,
        load.write_secs,
        load.load_secs,
        load.mmap_secs,
        load.regen_secs,
        load.load_rate(),
        load.mmap_rate(),
        load.regen_rate(),
        load.speedup(),
        load.mmap_vs_heap(),
        load.identical,
        load.mmap_identical,
        load.mapped,
    );
    let _ = writeln!(
        json,
        "  \"snapshot\": {{\"nodes\":{},\"categories\":{},\"samples\":{},\"bytes\":{},\"write_secs\":{:.6},\"restore_secs\":{:.6},\"write_samples_per_sec\":{:.1},\"restore_samples_per_sec\":{:.1},\"identical\":{}}},",
        snapshot.nodes,
        snapshot.categories,
        snapshot.samples,
        snapshot.bytes,
        snapshot.write_secs,
        snapshot.restore_secs,
        snapshot.write_rate(),
        snapshot.restore_rate(),
        snapshot.identical,
    );
    let serve_runs: Vec<String> = serve
        .runs
        .iter()
        .map(|r| {
            format!(
                "{{\"threads\":{},\"secs\":{:.6},\"requests\":{},\"requests_per_sec\":{:.1},\"p50_ms\":{:.4},\"p99_ms\":{:.4}}}",
                r.threads, r.secs, r.requests, r.rate, r.p50_ms, r.p99_ms
            )
        })
        .collect();
    let _ = writeln!(
        json,
        "  \"serve\": {{\"nodes\":{},\"edges\":{},\"categories\":{},\"rounds\":{},\"steps_per_ingest\":{},\"best_speedup\":{:.3},\"runs\":[{}]}},",
        serve.nodes,
        serve.edges,
        serve.categories,
        serve.rounds,
        serve.steps_per_ingest,
        {
            let t1 = serve.runs.iter().find(|r| r.threads == 1);
            let best = serve.runs.iter().map(|r| r.rate).fold(0.0f64, f64::max);
            match t1 {
                Some(r1) if r1.rate > 0.0 => best / r1.rate,
                _ => 1.0,
            }
        },
        serve_runs.join(","),
    );
    let open_runs: Vec<String> = serve_open
        .runs
        .iter()
        .map(|r| {
            format!(
                "{{\"requested_conns\":{},\"open_conns\":{},\"requests\":{},\"secs\":{:.6},\"achieved_rps\":{:.1},\"p50_ms\":{:.4},\"p99_ms\":{:.4}}}",
                r.requested_conns, r.open_conns, r.requests, r.secs, r.rate, r.p50_ms, r.p99_ms
            )
        })
        .collect();
    let idle_json = match &serve_open.idle {
        Some(i) => format!(
            ",\"idle\":{{\"event_conns\":{},\"fallback_conns\":{},\"window_secs\":{:.1},\"idle_poll_ms\":{},\"event_cpu_per_conn_sec\":{:.3e},\"fallback_cpu_per_conn_sec\":{:.3e},\"idle_cpu_ratio\":{:.3}}}",
            i.event_conns,
            i.fallback_conns,
            i.window_secs,
            i.idle_poll_ms,
            i.event_cpu_per_conn_sec,
            i.fallback_cpu_per_conn_sec,
            i.ratio,
        ),
        None => String::new(),
    };
    let _ = writeln!(
        json,
        "  \"serve_open\": {{\"target_rps\":{:.1},\"drivers\":{},\"steps_per_ingest\":{},\"runs\":[{}]{}}},",
        serve_open.target_rps,
        serve_open.drivers,
        serve_open.steps_per_ingest,
        open_runs.join(","),
        idle_json,
    );
    let _ = writeln!(
        json,
        "  \"cluster\": {{\"shards\":{},\"walkers\":{},\"steps_per_walker\":{},\"batch\":{},\"bit_identical\":{},\"best_speedup\":{:.3},\"runs\":{}}},",
        cluster.shards,
        cluster.walkers,
        cluster.steps_per_walker,
        cluster.batch,
        cluster.bit_identical,
        speedup(&cluster.runs),
        runs_json(&cluster.runs, "samples_per_sec"),
    );
    let _ = write!(
        json,
        "  \"obs\": {{\"walk_steps\":{},\"walk_off_secs\":{:.6},\"walk_traced_secs\":{:.6},\"walk_steps_per_sec_off\":{:.1},\"walk_steps_per_sec_traced\":{:.1},\"walk_traced_ratio\":{:.4},\"serve_rounds\":{},\"serve_requests\":{},\"serve_off_secs\":{:.6},\"serve_traced_secs\":{:.6},\"serve_requests_per_sec_off\":{:.1},\"serve_requests_per_sec_traced\":{:.1},\"serve_traced_ratio\":{:.4}}}\n}}\n",
        obs.walk_steps,
        obs.walk.off_secs,
        obs.walk.traced_secs,
        obs.walk.off_rate,
        obs.walk.traced_rate,
        obs.walk.traced_ratio(),
        obs.serve_rounds,
        obs.serve_requests,
        obs.serve.off_secs,
        obs.serve.traced_secs,
        obs.serve.off_rate,
        obs.serve.traced_rate,
        obs.serve.traced_ratio(),
    );

    std::fs::write(&opts.out, &json).map_err(|e| format!("cannot write {:?}: {e}", opts.out))?;
    eprintln!("wrote {}", opts.out.display());
    Ok(json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_runs_and_reports() {
        let dir = std::env::temp_dir().join("cgte-bench-test");
        std::fs::create_dir_all(&dir).unwrap();
        let opts = BenchOptions {
            quick: true,
            seed: 7,
            threads: vec![1, 2],
            out: dir.join("bench.json"),
            cache_dir: Some(dir.clone()),
            // Tests run unoptimized; the committed reports use the real
            // 1M-node headline via the release binary.
            load_nodes: 20_000,
            // Likewise shrunk: the committed reports park 1k/10k
            // connections via the release binary.
            open_conns: vec![48],
            idle_conns: 32,
        };
        let json = run_bench(&opts).unwrap();
        assert!(json.contains("\"schema\": \"cgte-bench/1\""));
        assert!(json.contains("\"generator\":\"chung_lu\""));
        assert!(json.contains("\"bit_identical\":true"));
        assert!(json.contains("\"steps_per_sec\""));
        assert!(json.contains("\"samples_per_sec\""));
        assert!(json.contains("\"speedup_vs_regen\""));
        assert!(json.contains("\"identical\":true"));
        assert!(json.contains("\"write_samples_per_sec\""));
        assert!(json.contains("\"restore_samples_per_sec\""));
        assert!(json.contains("\"serve\""));
        assert!(json.contains("\"requests_per_sec\""));
        assert!(json.contains("\"p99_ms\""));
        assert!(json.contains("\"serve_open\""));
        assert!(json.contains("\"achieved_rps\""));
        assert!(json.contains("\"open_conns\":48"));
        // The idle-CPU leg runs wherever the event engine is compiled in.
        #[cfg(target_os = "linux")]
        assert!(json.contains("\"idle_cpu_ratio\""));
        assert!(json.contains("\"cluster\": {\"shards\":4,\"walkers\":16"));
        assert!(json.contains("\"bit_identical\":true,\"best_speedup\""));
        assert!(json.contains("\"obs\""));
        assert!(json.contains("\"walk_traced_ratio\""));
        assert!(json.contains("\"serve_traced_ratio\""));
        // The obs section must leave the process-global tracer disabled,
        // or everything after a bench run would pay for tracing.
        assert_eq!(cgte_obs::level(), 0);
        let back = std::fs::read_to_string(&opts.out).unwrap();
        assert_eq!(back, json);
        // The load section kept its .cgteg in the cache dir.
        let kept = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .any(|p| p.extension().is_some_and(|x| x == "cgteg"));
        assert!(kept, "--cache-dir keeps the headline store file");
    }
}
