//! The `cgte bench` harness: machine-readable performance trajectory.
//!
//! Times three hot paths at each configured thread count and emits a JSON
//! report (`BENCH_PR3.json` by default) that later PRs append to, so speed
//! claims are pinned from PR to PR rather than asserted in prose:
//!
//! - **build** — edges/sec of every parallel generator (Chung–Lu at
//!   million-node scale is the headline), with a bit-identity check of
//!   each multi-threaded build against the serial (`threads = 1`)
//!   reference;
//! - **walk** — aggregate RW/MHRW steps/sec with `t` concurrent
//!   independent walkers over the shared CSR;
//! - **estimate** — NRMSE-experiment throughput (replications and
//!   observed samples per second) via `ExperimentConfig::threads`.
//!
//! The JSON schema is documented in `EXPERIMENTS.md` (§ benchmark
//! harness). Timings are wall-clock; `available_parallelism` is recorded
//! so a 1-core CI box's flat speedups are interpretable.

use cgte_eval::{run_experiment, ExperimentConfig, Target};
use cgte_graph::generators::{
    par_barabasi_albert, par_chung_lu, par_configuration_model_erased, par_gnp,
    par_planted_partition, powerlaw_degree_sequence, powerlaw_weights, scale_to_mean,
    PlantedConfig,
};
use cgte_graph::Graph;
use cgte_sampling::{AnySampler, MetropolisHastingsWalk, NodeSampler, RandomWalk};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// Options for one benchmark run.
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// CI-sized problem sizes (seconds instead of minutes).
    pub quick: bool,
    /// Base RNG seed for every timed workload.
    pub seed: u64,
    /// Thread counts to measure (the first must be 1 — the serial
    /// reference everything is compared against).
    pub threads: Vec<usize>,
    /// Where to write the JSON report.
    pub out: PathBuf,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            quick: false,
            seed: 0x2012_5EED,
            threads: vec![1, 2, 8],
            out: PathBuf::from("BENCH_PR3.json"),
        }
    }
}

struct TimedRun {
    threads: usize,
    secs: f64,
    rate: f64,
}

struct BuildEntry {
    generator: String,
    nodes: usize,
    edges: usize,
    runs: Vec<TimedRun>,
    bit_identical: bool,
}

struct WalkEntry {
    sampler: String,
    steps_per_walker: usize,
    runs: Vec<TimedRun>,
}

struct EstimateEntry {
    nodes: usize,
    replications: usize,
    max_size: usize,
    targets: usize,
    runs: Vec<TimedRun>,
}

fn secs(start: Instant) -> f64 {
    start.elapsed().as_secs_f64()
}

/// Wall-clock speedup for fixed-size workloads (build, estimate): the
/// same work at every thread count, so time ratios are the right metric.
fn speedup(runs: &[TimedRun]) -> f64 {
    let t1 = runs.iter().find(|r| r.threads == 1);
    let best = runs.iter().map(|r| r.secs).fold(f64::INFINITY, f64::min);
    match t1 {
        Some(r1) if best > 0.0 => r1.secs / best,
        _ => 1.0,
    }
}

/// Throughput speedup for workloads that scale with the thread count
/// (the walk section runs `t` walkers of `steps` each): best aggregate
/// rate over the serial rate. Comparing wall-clock there would divide
/// times of different-sized workloads and could never show scaling.
fn rate_speedup(runs: &[TimedRun]) -> f64 {
    let t1 = runs.iter().find(|r| r.threads == 1);
    let best = runs.iter().map(|r| r.rate).fold(0.0f64, f64::max);
    match t1 {
        Some(r1) if r1.rate > 0.0 => best / r1.rate,
        _ => 1.0,
    }
}

fn bench_build(name: &str, opts: &BenchOptions, build: impl Fn(usize) -> Graph) -> BuildEntry {
    let mut runs = Vec::new();
    let mut reference: Option<Graph> = None;
    let mut identical = true;
    for &t in &opts.threads {
        let start = Instant::now();
        let g = build(t);
        let dt = secs(start);
        runs.push(TimedRun {
            threads: t,
            secs: dt,
            rate: g.num_edges() as f64 / dt.max(1e-9),
        });
        match &reference {
            None => reference = Some(g),
            Some(r) => identical &= &g == r,
        }
    }
    let g = reference.expect("at least one thread count");
    eprintln!(
        "build/{name}: {} nodes, {} edges, serial {:.2}s, speedup {:.2}x, bit-identical: {identical}",
        g.num_nodes(),
        g.num_edges(),
        runs[0].secs,
        speedup(&runs),
    );
    BuildEntry {
        generator: name.to_string(),
        nodes: g.num_nodes(),
        edges: g.num_edges(),
        runs,
        bit_identical: identical,
    }
}

fn bench_walks(g: &Graph, opts: &BenchOptions) -> Vec<WalkEntry> {
    let steps = if opts.quick { 200_000 } else { 2_000_000 };
    let samplers: [(&str, AnySampler); 2] = [
        ("rw", AnySampler::Rw(RandomWalk::new())),
        ("mhrw", AnySampler::Mhrw(MetropolisHastingsWalk::new())),
    ];
    samplers
        .into_iter()
        .map(|(name, sampler)| {
            let mut runs = Vec::new();
            for &t in &opts.threads {
                let start = Instant::now();
                crossbeam::scope(|scope| {
                    for w in 0..t {
                        let sampler = &sampler;
                        scope.spawn(move |_| {
                            let mut rng = StdRng::seed_from_u64(
                                opts.seed ^ (w as u64).wrapping_mul(0x9E37_79B9),
                            );
                            let mut buf = Vec::with_capacity(steps);
                            sampler.sample_into(g, steps, &mut rng, &mut buf);
                            buf.len()
                        });
                    }
                })
                .expect("walker panicked");
                let dt = secs(start);
                runs.push(TimedRun {
                    threads: t,
                    secs: dt,
                    rate: (steps * t) as f64 / dt.max(1e-9),
                });
            }
            eprintln!(
                "walk/{name}: {steps} steps/walker, serial {:.0} steps/s",
                runs[0].rate
            );
            WalkEntry {
                sampler: name.to_string(),
                steps_per_walker: steps,
                runs,
            }
        })
        .collect()
}

fn bench_estimate(opts: &BenchOptions) -> EstimateEntry {
    // A laptop-scale planted graph: estimate throughput is dominated by
    // walking + observation, not graph size.
    let scale_div = if opts.quick { 60 } else { 10 };
    let cfg = PlantedConfig::scaled(scale_div, 20, 0.5);
    let pg = par_planted_partition(&cfg, opts.seed, 0).expect("feasible planted config");
    let sizes = if opts.quick {
        vec![100, 500]
    } else {
        vec![100, 1_000, 10_000]
    };
    let max_size = *sizes.iter().max().unwrap();
    let replications = if opts.quick { 8 } else { 40 };
    let ncat = pg.partition.num_categories() as u32;
    let targets: Vec<Target> = (0..ncat).map(Target::Size).collect();
    let sampler = AnySampler::Rw(RandomWalk::new().burn_in(max_size / 10));
    let mut runs = Vec::new();
    for &t in &opts.threads {
        let cfg = ExperimentConfig::new(sizes.clone(), replications)
            .seed(opts.seed)
            .threads(t);
        let start = Instant::now();
        let res = run_experiment(&pg.graph, &pg.partition, &sampler, &targets, &cfg);
        let dt = secs(start);
        assert!(!res.entries().is_empty(), "experiment produced no series");
        runs.push(TimedRun {
            threads: t,
            secs: dt,
            rate: (replications * max_size) as f64 / dt.max(1e-9),
        });
    }
    eprintln!(
        "estimate: {} nodes, {replications} reps × |S|={max_size}, serial {:.0} samples/s",
        pg.graph.num_nodes(),
        runs[0].rate
    );
    EstimateEntry {
        nodes: pg.graph.num_nodes(),
        replications,
        max_size,
        targets: targets.len(),
        runs,
    }
}

fn runs_json(runs: &[TimedRun], rate_key: &str) -> String {
    let items: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "{{\"threads\":{},\"secs\":{:.6},\"{rate_key}\":{:.1}}}",
                r.threads, r.secs, r.rate
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}

/// Runs the full harness and writes the JSON report. Returns the JSON.
pub fn run_bench(opts: &BenchOptions) -> Result<String, String> {
    assert!(
        opts.threads.first() == Some(&1),
        "the first thread count must be 1 (the serial reference)"
    );
    assert!(
        opts.threads.iter().all(|&t| t >= 1),
        "thread counts must be positive"
    );
    let seed = opts.seed;
    let quick = opts.quick;

    // --- build rates ------------------------------------------------------
    let cl_n = if quick { 100_000 } else { 1_000_000 };
    let mut w = powerlaw_weights(
        cl_n,
        2.5,
        2.0,
        (cl_n as f64).sqrt(),
        &mut StdRng::seed_from_u64(seed),
    );
    scale_to_mean(&mut w, 10.0);
    let mut builds = Vec::new();
    builds.push(bench_build("chung_lu", opts, |t| par_chung_lu(&w, seed, t)));
    let gnp_n = if quick { 100_000 } else { 1_000_000 };
    builds.push(bench_build("gnp", opts, |t| {
        par_gnp(gnp_n, 10.0 / gnp_n as f64, seed, t)
    }));
    let ba_n = if quick { 30_000 } else { 300_000 };
    builds.push(bench_build("barabasi_albert", opts, |t| {
        par_barabasi_albert(ba_n, 4, seed, t).expect("valid BA parameters")
    }));
    let cm_n = if quick { 30_000 } else { 300_000 };
    let mut deg = powerlaw_degree_sequence(cm_n, 2.5, 2, 200, &mut StdRng::seed_from_u64(seed));
    if deg.iter().sum::<usize>() % 2 != 0 {
        deg[0] += 1;
    }
    builds.push(bench_build("configuration", opts, |t| {
        par_configuration_model_erased(&deg, seed, t).expect("even degree sum")
    }));
    let planted_cfg = if quick {
        PlantedConfig::scaled(30, 10, 0.5)
    } else {
        PlantedConfig::scaled_up(3, 10, 0.5)
    };
    builds.push(bench_build("planted", opts, |t| {
        par_planted_partition(&planted_cfg, seed, t)
            .expect("feasible planted config")
            .graph
    }));

    // --- walk + estimate throughput --------------------------------------
    let walk_graph = par_chung_lu(&w, seed, 0);
    let walks = bench_walks(&walk_graph, opts);
    let estimate = bench_estimate(opts);

    // --- report -----------------------------------------------------------
    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"schema\": \"cgte-bench/1\",\n  \"pr\": \"PR3\",\n  \"quick\": {},\n  \"seed\": {},\n  \"available_parallelism\": {},\n  \"threads\": [{}],\n",
        quick,
        seed,
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
        opts.threads
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(",")
    );
    json.push_str("  \"build\": [\n");
    for (i, b) in builds.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"generator\":\"{}\",\"nodes\":{},\"edges\":{},\"bit_identical\":{},\"best_speedup\":{:.3},\"runs\":{}}}{}",
            b.generator,
            b.nodes,
            b.edges,
            b.bit_identical,
            speedup(&b.runs),
            runs_json(&b.runs, "edges_per_sec"),
            if i + 1 < builds.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n  \"walk\": [\n");
    for (i, e) in walks.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"sampler\":\"{}\",\"steps_per_walker\":{},\"best_speedup\":{:.3},\"runs\":{}}}{}",
            e.sampler,
            e.steps_per_walker,
            rate_speedup(&e.runs),
            runs_json(&e.runs, "steps_per_sec"),
            if i + 1 < walks.len() { "," } else { "" }
        );
    }
    let _ = write!(
        json,
        "  ],\n  \"estimate\": {{\"nodes\":{},\"replications\":{},\"max_size\":{},\"targets\":{},\"best_speedup\":{:.3},\"runs\":{}}}\n}}\n",
        estimate.nodes,
        estimate.replications,
        estimate.max_size,
        estimate.targets,
        speedup(&estimate.runs),
        runs_json(&estimate.runs, "samples_per_sec"),
    );

    std::fs::write(&opts.out, &json).map_err(|e| format!("cannot write {:?}: {e}", opts.out))?;
    eprintln!("wrote {}", opts.out.display());
    Ok(json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_runs_and_reports() {
        let dir = std::env::temp_dir().join("cgte-bench-test");
        std::fs::create_dir_all(&dir).unwrap();
        let opts = BenchOptions {
            quick: true,
            seed: 7,
            threads: vec![1, 2],
            out: dir.join("bench.json"),
        };
        let json = run_bench(&opts).unwrap();
        assert!(json.contains("\"schema\": \"cgte-bench/1\""));
        assert!(json.contains("\"generator\":\"chung_lu\""));
        assert!(json.contains("\"bit_identical\":true"));
        assert!(json.contains("\"steps_per_sec\""));
        assert!(json.contains("\"samples_per_sec\""));
        let back = std::fs::read_to_string(&opts.out).unwrap();
        assert_eq!(back, json);
    }
}
