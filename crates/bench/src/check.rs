//! The CI performance-regression gate: `cgte bench --check BASELINE.json`.
//!
//! Compares a freshly produced harness report against a committed
//! baseline, metric by metric, with ratio thresholds: a metric that drops
//! below [`FAIL_RATIO`] (>25 % regression) fails the gate, below
//! [`WARN_RATIO`] (>10 %) warns.
//!
//! **Machine normalization.** Absolute throughputs (edges/sec,
//! steps/sec, samples/sec) are only meaningful between comparable
//! machines, and thread-scaling figures are only meaningful on equal
//! core counts — so those metrics are compared **only when both reports
//! record the same `available_parallelism`** (the committed baseline and
//! CI's runners, or two runs on one developer box). Internal ratios —
//! the load section's `speedup_vs_regen` and the obs section's
//! traced/disabled rate ratios, where both timings come from the same
//! box within one run — are machine-independent and are always
//! compared. Reports from different tiers (`quick` flag
//! mismatch) are never comparable: the workloads differ, so the checker
//! refuses with instructions to regenerate the baseline.

use cgte_scenarios::artifact::{parse_json, Json};

/// A metric at or below this fraction of its baseline fails the gate
/// (0.75 = a regression of more than 25 %).
pub const FAIL_RATIO: f64 = 0.75;
/// A metric at or below this fraction of its baseline warns
/// (0.90 = a regression of more than 10 %).
pub const WARN_RATIO: f64 = 0.90;
/// Latencies below this many milliseconds are clamped up to it before
/// the gate ratio: at the tens-of-microseconds scale a "25 % regression"
/// is scheduler/timer noise (a 70 µs vs 100 µs p50 is the same service),
/// while any regression a user could notice pushes well past the floor
/// and still fails.
pub const LATENCY_FLOOR_MS: f64 = 0.5;
/// Floor for the open-loop (`serve_open`) tail latencies. Under an
/// open-loop schedule the p99 is bounded by the schedule duration
/// itself (~2 s at the default `requests = 2 × rate`), and on a
/// contended host a moment of CPU steal mid-schedule queues hundreds of
/// scheduled arrivals — legitimately placing the tail anywhere under
/// that bound run-to-run. Only a tail at the scale of the whole
/// schedule is signal (the server fell behind by the entire run), so
/// both sides clamp up to the schedule scale first; the stable
/// regression gates for this section are `achieved_rps` and the
/// idle-CPU ratio.
pub const OPEN_LOOP_LATENCY_FLOOR_MS: f64 = 2_000.0;

/// How a metric travels between machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricClass {
    /// Absolute throughput — comparable only on matching machines.
    Absolute,
    /// Internal ratio (both sides measured in one run on one box) —
    /// always comparable.
    Ratio,
}

struct Metric {
    name: String,
    value: f64,
    class: MetricClass,
    /// Most metrics are throughputs (bigger is better); latency metrics
    /// (`p50_ms`, `p99_ms`) invert — the gate ratio is computed so that
    /// `< 1` always means "got worse".
    higher_is_better: bool,
    /// Latency floor: both sides clamp up to this before the gate
    /// ratio (see [`LATENCY_FLOOR_MS`]). Unused for throughputs.
    floor: f64,
}

impl Metric {
    fn throughput(name: String, value: f64, class: MetricClass) -> Metric {
        Metric {
            name,
            value,
            class,
            higher_is_better: true,
            floor: 0.0,
        }
    }

    fn latency(name: String, value: f64) -> Metric {
        Metric::latency_floored(name, value, LATENCY_FLOOR_MS)
    }

    fn latency_floored(name: String, value: f64, floor: f64) -> Metric {
        Metric {
            name,
            value,
            class: MetricClass::Absolute,
            higher_is_better: false,
            floor,
        }
    }
}

struct Extracted {
    quick: bool,
    parallelism: f64,
    metrics: Vec<Metric>,
}

/// The checker's verdict.
#[derive(Debug, Clone, Default)]
pub struct CheckOutcome {
    /// Metrics that regressed beyond [`FAIL_RATIO`] (plus structural
    /// problems such as a metric disappearing from the report).
    pub failures: Vec<String>,
    /// Metrics that regressed beyond [`WARN_RATIO`] but not enough to
    /// fail.
    pub warnings: Vec<String>,
    /// Number of metrics actually compared.
    pub compared: usize,
    /// Metrics skipped because the machines are not comparable
    /// (`available_parallelism` mismatch).
    pub skipped: usize,
}

fn get<'a>(v: &'a Json, key: &str, ctx: &str) -> Result<&'a Json, String> {
    v.get(key)
        .ok_or_else(|| format!("{ctx}: missing key {key:?}"))
}

fn num(v: &Json, key: &str, ctx: &str) -> Result<f64, String> {
    match get(v, key, ctx)? {
        Json::Num(x) => Ok(*x),
        other => Err(format!("{ctx}: {key} is not a number ({other:?})")),
    }
}

fn text<'a>(v: &'a Json, key: &str, ctx: &str) -> Result<&'a str, String> {
    match get(v, key, ctx)? {
        Json::Str(s) => Ok(s),
        other => Err(format!("{ctx}: {key} is not a string ({other:?})")),
    }
}

fn arr<'a>(v: &'a Json, key: &str, ctx: &str) -> Result<&'a [Json], String> {
    match get(v, key, ctx)? {
        Json::Arr(a) => Ok(a),
        other => Err(format!("{ctx}: {key} is not an array ({other:?})")),
    }
}

/// The serial (threads == 1) rate of a `runs` array.
fn serial_rate(entry: &Json, rate_key: &str, ctx: &str) -> Result<f64, String> {
    for run in arr(entry, "runs", ctx)? {
        if num(run, "threads", ctx)? == 1.0 {
            return num(run, rate_key, ctx);
        }
    }
    Err(format!("{ctx}: no threads=1 run"))
}

fn extract(report: &str, label: &str) -> Result<Extracted, String> {
    let v = parse_json(report).map_err(|e| format!("{label}: invalid JSON: {e}"))?;
    let schema = text(&v, "schema", label)?;
    if schema != "cgte-bench/1" {
        return Err(format!("{label}: unsupported schema {schema:?}"));
    }
    let quick = matches!(get(&v, "quick", label)?, Json::Bool(true));
    let parallelism = num(&v, "available_parallelism", label)?;
    let mut metrics = Vec::new();

    for entry in arr(&v, "build", label)? {
        let generator = text(entry, "generator", label)?;
        let ctx = format!("{label}: build/{generator}");
        metrics.push(Metric::throughput(
            format!("build/{generator}/edges_per_sec@1"),
            serial_rate(entry, "edges_per_sec", &ctx)?,
            MetricClass::Absolute,
        ));
        // Thread-scaling figures are meaningful only when the machine can
        // actually scale: on a 1-core box any recorded speedup is
        // scheduler/timer noise and would make the gate flaky.
        if parallelism > 1.0 {
            metrics.push(Metric::throughput(
                format!("build/{generator}/best_speedup"),
                num(entry, "best_speedup", &ctx)?,
                MetricClass::Absolute,
            ));
        }
    }
    for entry in arr(&v, "walk", label)? {
        let sampler = text(entry, "sampler", label)?;
        let ctx = format!("{label}: walk/{sampler}");
        metrics.push(Metric::throughput(
            format!("walk/{sampler}/steps_per_sec@1"),
            serial_rate(entry, "steps_per_sec", &ctx)?,
            MetricClass::Absolute,
        ));
    }
    let estimate = get(&v, "estimate", label)?;
    metrics.push(Metric::throughput(
        "estimate/samples_per_sec@1".into(),
        serial_rate(estimate, "samples_per_sec", &format!("{label}: estimate"))?,
        MetricClass::Absolute,
    ));
    // Reports written before the load section existed (PR3) simply
    // contribute no load metrics.
    if let Some(load) = v.get("load") {
        let ctx = format!("{label}: load");
        metrics.push(Metric::throughput(
            "load/edges_per_sec".into(),
            num(load, "load_edges_per_sec", &ctx)?,
            MetricClass::Absolute,
        ));
        metrics.push(Metric::throughput(
            "load/speedup_vs_regen".into(),
            num(load, "speedup_vs_regen", &ctx)?,
            MetricClass::Ratio,
        ));
        // Reports written before the mapped load path existed (PR8 and
        // earlier) simply contribute no mmap metric. Like the regen
        // ratio, mapped-vs-heap load time is internal (both sides timed
        // back to back on one box within one run), so it always gates —
        // a collapsing ratio means the zero-copy path stopped being
        // cheaper than a full heap decode.
        if load.get("mmap_vs_heap").is_some() {
            metrics.push(Metric::throughput(
                "load/mmap_vs_heap".into(),
                num(load, "mmap_vs_heap", &ctx)?,
                MetricClass::Ratio,
            ));
        }
    }
    // Reports written before the snapshot section existed simply
    // contribute no snapshot metrics. Both rates are serial absolute
    // throughputs (the `.cgtes` round trip is inherently single-core).
    if let Some(snapshot) = v.get("snapshot") {
        let ctx = format!("{label}: snapshot");
        metrics.push(Metric::throughput(
            "snapshot/write_samples_per_sec".into(),
            num(snapshot, "write_samples_per_sec", &ctx)?,
            MetricClass::Absolute,
        ));
        metrics.push(Metric::throughput(
            "snapshot/restore_samples_per_sec".into(),
            num(snapshot, "restore_samples_per_sec", &ctx)?,
            MetricClass::Absolute,
        ));
    }
    // Reports written before the serve section existed (PR4 and earlier)
    // simply contribute no serve metrics. Latencies gate inverted: a
    // higher p50/p99 than baseline is the regression.
    if let Some(serve) = v.get("serve") {
        let ctx = format!("{label}: serve");
        metrics.push(Metric::throughput(
            "serve/requests_per_sec@1".into(),
            serial_rate(serve, "requests_per_sec", &ctx)?,
            MetricClass::Absolute,
        ));
        metrics.push(Metric::latency(
            "serve/p50_ms@1".into(),
            serial_rate(serve, "p50_ms", &ctx)?,
        ));
        metrics.push(Metric::latency(
            "serve/p99_ms@1".into(),
            serial_rate(serve, "p99_ms", &ctx)?,
        ));
    }
    // Reports written before the serve_open section existed (PR9 and
    // earlier) simply contribute no open-loop metrics. Per-connection-
    // count throughput and tail latency are absolute (machine-matched);
    // the idle-CPU ratio — parked-connection CPU under the polling
    // fallback over the event engine, both sides timed back to back on
    // one box — is internal and always gates: a collapsing ratio means
    // idle connections stopped being nearly free.
    if let Some(serve_open) = v.get("serve_open") {
        let ctx = format!("{label}: serve_open");
        for run in arr(serve_open, "runs", &ctx)? {
            let conns = num(run, "requested_conns", &ctx)? as u64;
            metrics.push(Metric::throughput(
                format!("serve_open/achieved_rps@{conns}"),
                num(run, "achieved_rps", &ctx)?,
                MetricClass::Absolute,
            ));
            metrics.push(Metric::latency_floored(
                format!("serve_open/p99_ms@{conns}"),
                num(run, "p99_ms", &ctx)?,
                OPEN_LOOP_LATENCY_FLOOR_MS,
            ));
        }
        if let Some(idle) = serve_open.get("idle") {
            // The raw ratio is the fallback's per-wakeup cost in units
            // of the one-scheduler-tick floor the event side always
            // reads as — a hardware constant that legitimately varies
            // across runner classes. The claim the gate pins is
            // categorical, not proportional: parking a connection on
            // the event engine is at least an order of magnitude
            // cheaper than the polling fallback. Capping both sides at
            // 10 makes the comparison exactly that claim — every
            // healthy report saturates the cap, while a real regression
            // (the event loop starting to poll or spin) crashes the
            // ratio toward 1 and fails on any hardware.
            metrics.push(Metric::throughput(
                "serve_open/idle_cpu_ratio".into(),
                num(idle, "idle_cpu_ratio", &ctx)?.min(10.0),
                MetricClass::Ratio,
            ));
        }
    }
    // Reports written before the cluster section existed (PR7 and
    // earlier) simply contribute no cluster metrics. The serial
    // coordinator rate is an absolute throughput; the round-pool speedup
    // is an internal wall-clock ratio (both sides timed back to back on
    // one box within one run) — but like every speedup it is only
    // extracted on machines that can actually scale, since a 1-core
    // box's recorded speedup is scheduler noise around 1.0.
    if let Some(cluster) = v.get("cluster") {
        let ctx = format!("{label}: cluster");
        metrics.push(Metric::throughput(
            "cluster/samples_per_sec@1".into(),
            serial_rate(cluster, "samples_per_sec", &ctx)?,
            MetricClass::Absolute,
        ));
        if parallelism > 1.0 {
            metrics.push(Metric::throughput(
                "cluster/best_speedup".into(),
                num(cluster, "best_speedup", &ctx)?,
                MetricClass::Ratio,
            ));
        }
    }
    // Reports written before the obs section existed (PR6 and earlier)
    // simply contribute no obs metrics. Both traced/disabled ratios are
    // internal (off and noop-traced timed back to back on one box), so
    // they gate across machines — a collapsing ratio means tracing got
    // expensive relative to the hot path it instruments.
    if let Some(obs) = v.get("obs") {
        let ctx = format!("{label}: obs");
        metrics.push(Metric::throughput(
            "obs/walk_traced_ratio".into(),
            num(obs, "walk_traced_ratio", &ctx)?,
            MetricClass::Ratio,
        ));
        metrics.push(Metric::throughput(
            "obs/serve_traced_ratio".into(),
            num(obs, "serve_traced_ratio", &ctx)?,
            MetricClass::Ratio,
        ));
    }
    Ok(Extracted {
        quick,
        parallelism,
        metrics,
    })
}

/// Compares a current harness report against a baseline report. `Err` is
/// reserved for unusable input (bad JSON, tier mismatch); regressions
/// land in the returned [`CheckOutcome`].
pub fn check_reports(current: &str, baseline: &str) -> Result<CheckOutcome, String> {
    let cur = extract(current, "current report")?;
    let base = extract(baseline, "baseline")?;
    if cur.quick != base.quick {
        return Err(format!(
            "tier mismatch: current quick={}, baseline quick={} — the workloads differ; \
             regenerate the baseline at the gate's tier",
            cur.quick, base.quick
        ));
    }
    let same_machine = cur.parallelism == base.parallelism;
    let mut out = CheckOutcome::default();
    for bm in &base.metrics {
        if bm.class == MetricClass::Absolute && !same_machine {
            out.skipped += 1;
            continue;
        }
        let Some(cm) = cur.metrics.iter().find(|m| m.name == bm.name) else {
            out.failures.push(format!(
                "{}: present in baseline but missing from the current report",
                bm.name
            ));
            continue;
        };
        if !(bm.value.is_finite() && bm.value > 0.0) {
            out.skipped += 1;
            continue;
        }
        out.compared += 1;
        // Oriented so < 1 always means "got worse": current/baseline for
        // throughputs, baseline/current for latencies (the latter floored
        // at [`LATENCY_FLOOR_MS`] — see its docs).
        let ratio = if bm.higher_is_better {
            cm.value / bm.value
        } else {
            bm.value.max(bm.floor) / cm.value.max(bm.floor)
        };
        let line = format!(
            "{}: {:.1} vs baseline {:.1} (ratio {:.3})",
            bm.name, cm.value, bm.value, ratio
        );
        if ratio < FAIL_RATIO {
            out.failures.push(line);
        } else if ratio < WARN_RATIO {
            out.warnings.push(line);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal but schema-complete report with every rate scaled by
    /// `f` (except the internal load ratio, scaled by `ratio_f`).
    fn report(parallelism: usize, f: f64, ratio_f: f64) -> String {
        format!(
            r#"{{
  "schema": "cgte-bench/1",
  "pr": "PR4",
  "quick": true,
  "seed": 7,
  "available_parallelism": {parallelism},
  "threads": [1,2],
  "build": [
    {{"generator":"chung_lu","nodes":1000,"edges":5000,"bit_identical":true,"best_speedup":{sp:.3},"runs":[{{"threads":1,"secs":0.5,"edges_per_sec":{b1:.1}}},{{"threads":2,"secs":0.4,"edges_per_sec":{b2:.1}}}]}}
  ],
  "walk": [
    {{"sampler":"rw","steps_per_walker":1000,"best_speedup":1.0,"runs":[{{"threads":1,"secs":0.1,"steps_per_sec":{w1:.1}}}]}}
  ],
  "estimate": {{"nodes":100,"replications":2,"max_size":10,"targets":3,"best_speedup":1.0,"runs":[{{"threads":1,"secs":0.1,"samples_per_sec":{e1:.1}}}]}},
  "load": {{"generator":"chung_lu","nodes":1000,"edges":5000,"write_secs":0.1,"load_secs":0.01,"mmap_secs":0.001,"regen_secs":0.5,"load_edges_per_sec":{l1:.1},"mmap_edges_per_sec":5000000.0,"regen_edges_per_sec":10000.0,"speedup_vs_regen":{lr:.3},"mmap_vs_heap":{lm:.3},"identical":true,"mmap_identical":true,"mapped":true}},
  "snapshot": {{"nodes":1000,"categories":10,"samples":50000,"bytes":1200000,"write_secs":0.01,"restore_secs":0.02,"write_samples_per_sec":{sw:.1},"restore_samples_per_sec":{sr:.1},"identical":true}},
  "serve": {{"nodes":1000,"edges":5000,"categories":10,"rounds":25,"steps_per_ingest":200,"best_speedup":1.0,"runs":[{{"threads":1,"secs":1.0,"requests":100,"requests_per_sec":{s1:.1},"p50_ms":{p50:.4},"p99_ms":{p99:.4}}}]}},
  "serve_open": {{"target_rps":800.0,"drivers":4,"steps_per_ingest":200,"runs":[{{"requested_conns":1000,"open_conns":1000,"requests":1600,"secs":2.0,"achieved_rps":{so1:.1},"p50_ms":{sop50:.4},"p99_ms":{sop99:.4}}},{{"requested_conns":10000,"open_conns":9800,"requests":1600,"secs":2.1,"achieved_rps":{so2:.1},"p50_ms":{sop50:.4},"p99_ms":{sop99b:.4}}}],"idle":{{"event_conns":1000,"fallback_conns":256,"window_secs":2.0,"idle_poll_ms":50,"event_cpu_per_conn_sec":5.000e-6,"fallback_cpu_per_conn_sec":5.900e-4,"idle_cpu_ratio":{soir:.3}}}}},
  "cluster": {{"shards":4,"walkers":16,"steps_per_walker":400,"batch":100,"bit_identical":true,"best_speedup":{cs:.3},"runs":[{{"threads":1,"secs":1.0,"samples_per_sec":{c1:.1}}},{{"threads":2,"secs":0.6,"samples_per_sec":{c2:.1}}}]}},
  "obs": {{"walk_steps":1000000,"walk_off_secs":0.1,"walk_traced_secs":0.1,"walk_steps_per_sec_off":10000000.0,"walk_steps_per_sec_traced":10000000.0,"walk_traced_ratio":{ow:.4},"serve_rounds":400,"serve_requests":801,"serve_off_secs":0.1,"serve_traced_secs":0.1,"serve_requests_per_sec_off":8000.0,"serve_requests_per_sec_traced":8000.0,"serve_traced_ratio":{os:.4}}}
}}
"#,
            sp = 1.2 * f,
            b1 = 10000.0 * f,
            b2 = 12000.0 * f,
            w1 = 50000.0 * f,
            e1 = 20000.0 * f,
            l1 = 500000.0 * f,
            lr = 50.0 * ratio_f,
            lm = 10.0 * ratio_f,
            sw = 5_000_000.0 * f,
            sr = 2_500_000.0 * f,
            s1 = 800.0 * f,
            so1 = 790.0 * f,
            so2 = 760.0 * f,
            sop50 = 2.0 / f,
            // Above OPEN_LOOP_LATENCY_FLOOR_MS so the degraded-report
            // tests exercise the open-loop tail gate past its clamp.
            sop99 = 2_400.0 / f,
            sop99b = 4_000.0 / f,
            soir = 100.0 * ratio_f,
            cs = 1.7 * ratio_f,
            c1 = 6400.0 * f,
            c2 = 10600.0 * f,
            // Latencies move inversely with throughput: a degraded report
            // (f < 1) has *higher* p50/p99.
            p50 = 2.0 / f,
            p99 = 9.0 / f,
            ow = 1.0 * ratio_f,
            os = 0.99 * ratio_f,
        )
    }

    #[test]
    fn identical_reports_pass() {
        let r = report(1, 1.0, 1.0);
        let out = check_reports(&r, &r).unwrap();
        assert!(out.failures.is_empty(), "{:?}", out.failures);
        assert!(out.warnings.is_empty(), "{:?}", out.warnings);
        assert!(out.compared >= 5, "compared {} metrics", out.compared);
        assert_eq!(out.skipped, 0);
    }

    #[test]
    fn speedups_gate_only_on_multicore_machines() {
        // On matching multi-core boxes best_speedup gates…
        let out = check_reports(&report(8, 1.0, 1.0), &report(8, 1.0, 1.0)).unwrap();
        assert!(out.compared >= 6, "compared {} metrics", out.compared);
        let degraded = check_reports(&report(8, 0.7, 1.0), &report(8, 1.0, 1.0)).unwrap();
        assert!(degraded.failures.iter().any(|f| f.contains("best_speedup")));
        // …on 1-core boxes it is never extracted (speedups there are
        // timer noise, and gating on them makes CI flaky).
        let single = check_reports(&report(1, 0.7, 1.0), &report(1, 1.0, 1.0)).unwrap();
        assert!(single.failures.iter().all(|f| !f.contains("best_speedup")));
    }

    #[test]
    fn small_regression_only_warns() {
        // 15% down: past the warn line, short of the fail line. (The
        // idle-CPU ratio drops 100 → 85 but both sides saturate its
        // cap of 10, so it is compared without warning — by design.)
        let out = check_reports(&report(1, 0.85, 0.85), &report(1, 1.0, 1.0)).unwrap();
        assert!(out.failures.is_empty(), "{:?}", out.failures);
        assert_eq!(
            out.warnings.len(),
            out.compared - 1,
            "every uncapped metric warns"
        );
        assert!(out.warnings.iter().all(|w| !w.contains("idle_cpu_ratio")));
    }

    #[test]
    fn synthetically_degraded_report_fails_the_gate() {
        // The acceptance test: a >25% throughput regression must fail.
        let out = check_reports(&report(1, 0.70, 1.0), &report(1, 1.0, 1.0)).unwrap();
        assert!(
            !out.failures.is_empty(),
            "a 30% regression must produce failures"
        );
        assert!(
            out.failures.iter().any(|f| f.contains("edges_per_sec")),
            "the degraded build throughput is named: {:?}",
            out.failures
        );
        // The internal load ratio was untouched, so it is not among them.
        assert!(out.failures.iter().all(|f| !f.contains("speedup_vs_regen")));
    }

    #[test]
    fn improvements_never_fail() {
        let out = check_reports(&report(1, 1.5, 1.5), &report(1, 1.0, 1.0)).unwrap();
        assert!(out.failures.is_empty());
        assert!(out.warnings.is_empty());
    }

    #[test]
    fn absolute_metrics_skipped_across_machines_but_ratios_still_gate() {
        // Baseline from a 1-core box, current from an 8-core box: every
        // absolute throughput is skipped (machine-normalized via
        // available_parallelism), yet a collapsed internal load ratio
        // still fails the gate.
        let out = check_reports(&report(8, 0.5, 0.5), &report(1, 1.0, 1.0)).unwrap();
        assert!(out.skipped > 0, "absolute metrics skipped");
        assert_eq!(
            out.compared, 5,
            "only the machine-independent ratios are compared (2 load + 2 obs + idle CPU)"
        );
        assert!(
            out.failures.iter().any(|f| f.contains("speedup_vs_regen")),
            "{:?}",
            out.failures
        );
    }

    #[test]
    fn latency_regressions_gate_inverted() {
        // f = 0.7 makes every throughput 30% lower AND every latency
        // ~43% higher; both directions must fail, with the latency
        // failures carrying the serve p50/p99 names.
        let out = check_reports(&report(1, 0.7, 1.0), &report(1, 1.0, 1.0)).unwrap();
        assert!(out.failures.iter().any(|f| f.contains("serve/p99_ms")));
        assert!(out.failures.iter().any(|f| f.contains("serve/p50_ms")));
        assert!(
            out.failures
                .iter()
                .any(|f| f.contains("serve/requests_per_sec")),
            "{:?}",
            out.failures
        );
        // A latency *improvement* (current lower than baseline) passes.
        let out = check_reports(&report(1, 1.3, 1.0), &report(1, 1.0, 1.0)).unwrap();
        assert!(out.failures.is_empty(), "{:?}", out.failures);
        assert!(out.warnings.is_empty(), "{:?}", out.warnings);
    }

    #[test]
    fn microsecond_latency_jitter_is_floored() {
        // 70 µs vs 103 µs is scheduler noise, not a regression: both
        // sides clamp to the floor and the gate stays green. A genuine
        // multi-millisecond regression still fails.
        let base = report(1, 1.0, 1.0).replace("\"p50_ms\":2.0000", "\"p50_ms\":0.0700");
        let cur = report(1, 1.0, 1.0).replace("\"p50_ms\":2.0000", "\"p50_ms\":0.1030");
        let out = check_reports(&cur, &base).unwrap();
        assert!(
            out.failures.iter().all(|f| !f.contains("p50_ms")),
            "{:?}",
            out.failures
        );
        let bad = report(1, 1.0, 1.0).replace("\"p50_ms\":2.0000", "\"p50_ms\":9.0000");
        let out = check_reports(&bad, &base).unwrap();
        assert!(
            out.failures.iter().any(|f| f.contains("p50_ms")),
            "{:?}",
            out.failures
        );
    }

    #[test]
    fn pr4_baseline_without_serve_section_is_accepted() {
        let base = {
            let r = report(1, 1.0, 1.0);
            let head = r.split("  \"serve\":").next().unwrap().to_string();
            format!("{}\n}}\n", head.trim_end().trim_end_matches(','))
        };
        let out = check_reports(&report(1, 1.0, 1.0), &base).unwrap();
        assert!(out.failures.is_empty(), "{:?}", out.failures);
    }

    #[test]
    fn pr5_baseline_without_snapshot_section_is_accepted() {
        // A baseline committed before the snapshot section existed must
        // not fail the gate: the current report's extra snapshot metrics
        // are simply not compared until the baseline is regenerated.
        let base = report(1, 1.0, 1.0).replace("\"snapshot\":", "\"snapshot_unused\":");
        let out = check_reports(&report(1, 1.0, 1.0), &base).unwrap();
        assert!(out.failures.is_empty(), "{:?}", out.failures);
        // And the section does gate once both sides carry it: a collapsed
        // restore rate fails.
        let degraded = report(1, 1.0, 1.0).replace(
            "\"restore_samples_per_sec\":2500000.0",
            "\"restore_samples_per_sec\":100.0",
        );
        let out = check_reports(&degraded, &report(1, 1.0, 1.0)).unwrap();
        assert!(
            out.failures
                .iter()
                .any(|f| f.contains("snapshot/restore_samples_per_sec")),
            "{:?}",
            out.failures
        );
    }

    #[test]
    fn pr6_baseline_without_obs_section_is_accepted() {
        // A baseline committed before the obs section existed must not
        // fail the gate; once both sides carry it, a collapsed tracing
        // ratio (tracing suddenly costing 60% of the hot path) fails.
        let base = report(1, 1.0, 1.0).replace("\"obs\":", "\"obs_unused\":");
        let out = check_reports(&report(1, 1.0, 1.0), &base).unwrap();
        assert!(out.failures.is_empty(), "{:?}", out.failures);
        let degraded = report(1, 1.0, 1.0).replace(
            "\"serve_traced_ratio\":0.9900",
            "\"serve_traced_ratio\":0.4000",
        );
        let out = check_reports(&degraded, &report(1, 1.0, 1.0)).unwrap();
        assert!(
            out.failures
                .iter()
                .any(|f| f.contains("obs/serve_traced_ratio")),
            "{:?}",
            out.failures
        );
    }

    #[test]
    fn pr7_baseline_without_cluster_section_is_accepted() {
        // A baseline committed before the cluster section existed must
        // not fail the gate.
        let base = report(1, 1.0, 1.0).replace("\"cluster\":", "\"cluster_unused\":");
        let out = check_reports(&report(1, 1.0, 1.0), &base).unwrap();
        assert!(out.failures.is_empty(), "{:?}", out.failures);
        // Once both sides carry it, a collapsed coordinator rate fails…
        let degraded =
            report(1, 1.0, 1.0).replace("\"samples_per_sec\":6400.0", "\"samples_per_sec\":100.0");
        let out = check_reports(&degraded, &report(1, 1.0, 1.0)).unwrap();
        assert!(
            out.failures
                .iter()
                .any(|f| f.contains("cluster/samples_per_sec")),
            "{:?}",
            out.failures
        );
        // …and on machines that can scale, a collapsed round-pool
        // speedup gates as an internal wall-clock ratio.
        let degraded =
            report(8, 1.0, 1.0).replace("\"best_speedup\":1.700", "\"best_speedup\":1.000");
        let out = check_reports(&degraded, &report(8, 1.0, 1.0)).unwrap();
        assert!(
            out.failures
                .iter()
                .any(|f| f.contains("cluster/best_speedup")),
            "{:?}",
            out.failures
        );
    }

    #[test]
    fn pr8_baseline_without_mmap_ratio_is_accepted() {
        // A baseline committed before the mapped load path existed must
        // not fail the gate: its load section simply lacks the key.
        let base = report(1, 1.0, 1.0).replace("\"mmap_vs_heap\":", "\"mmap_unused\":");
        let out = check_reports(&report(1, 1.0, 1.0), &base).unwrap();
        assert!(out.failures.is_empty(), "{:?}", out.failures);
        // Once both sides carry it, a collapsed mapped-vs-heap ratio
        // fails — even across machines (it is an internal ratio).
        let degraded =
            report(8, 1.0, 1.0).replace("\"mmap_vs_heap\":10.000", "\"mmap_vs_heap\":2.000");
        let out = check_reports(&degraded, &report(1, 1.0, 1.0)).unwrap();
        assert!(
            out.failures.iter().any(|f| f.contains("load/mmap_vs_heap")),
            "{:?}",
            out.failures
        );
    }

    #[test]
    fn pr9_baseline_without_serve_open_section_is_accepted() {
        // A baseline committed before the open-loop section existed must
        // not fail the gate.
        let base = report(1, 1.0, 1.0).replace("\"serve_open\":", "\"serve_open_unused\":");
        let out = check_reports(&report(1, 1.0, 1.0), &base).unwrap();
        assert!(out.failures.is_empty(), "{:?}", out.failures);
        // Once both sides carry it, a collapsed open-loop rate or a blown
        // tail at a specific connection count fails, named per count.
        let degraded = report(1, 0.7, 1.0);
        let out = check_reports(&degraded, &report(1, 1.0, 1.0)).unwrap();
        assert!(
            out.failures
                .iter()
                .any(|f| f.contains("serve_open/achieved_rps@10000")),
            "{:?}",
            out.failures
        );
        assert!(
            out.failures
                .iter()
                .any(|f| f.contains("serve_open/p99_ms@1000")),
            "{:?}",
            out.failures
        );
        // The idle-CPU ratio is internal, so it gates even across
        // machines — but capped at 10 on both sides, so a drop that
        // stays above the cap (hardware variance in per-wakeup cost)
        // passes while a collapse below it (the event loop starting to
        // poll) fails.
        let shrunk =
            report(8, 1.0, 1.0).replace("\"idle_cpu_ratio\":100.000", "\"idle_cpu_ratio\":30.000");
        let out = check_reports(&shrunk, &report(1, 1.0, 1.0)).unwrap();
        assert!(
            !out.failures
                .iter()
                .any(|f| f.contains("serve_open/idle_cpu_ratio")),
            "{:?}",
            out.failures
        );
        let degraded =
            report(8, 1.0, 1.0).replace("\"idle_cpu_ratio\":100.000", "\"idle_cpu_ratio\":4.000");
        let out = check_reports(&degraded, &report(1, 1.0, 1.0)).unwrap();
        assert!(
            out.failures
                .iter()
                .any(|f| f.contains("serve_open/idle_cpu_ratio")),
            "{:?}",
            out.failures
        );
        // A baseline *with* idle data against a current report without it
        // (event engine unavailable) is a hard failure, not a silent skip.
        let current = report(1, 1.0, 1.0).replace("\"idle\":", "\"idle_unused\":");
        let out = check_reports(&current, &report(1, 1.0, 1.0)).unwrap();
        assert!(
            out.failures
                .iter()
                .any(|f| f.contains("idle_cpu_ratio") && f.contains("missing")),
            "{:?}",
            out.failures
        );
    }

    #[test]
    fn missing_metric_is_a_failure() {
        let base = report(1, 1.0, 1.0);
        let current = base
            .replace("\"walk/", "\"wxlk/")
            .replace("{\"sampler\":\"rw\"", "{\"sampler\":\"other\"");
        let out = check_reports(&current, &base).unwrap();
        assert!(
            out.failures.iter().any(|f| f.contains("missing")),
            "{:?}",
            out.failures
        );
    }

    #[test]
    fn tier_mismatch_is_unusable_input() {
        let base = report(1, 1.0, 1.0);
        let current = base.replace("\"quick\": true", "\"quick\": false");
        let err = check_reports(&current, &base).unwrap_err();
        assert!(err.contains("tier mismatch"), "{err}");
    }

    #[test]
    fn pr3_baseline_without_load_section_is_accepted() {
        let base = {
            let r = report(1, 1.0, 1.0);
            // Strip the load section the way a PR3-era report lacks it.
            let head = r.split("  \"load\":").next().unwrap().to_string();
            format!("{}\n}}\n", head.trim_end().trim_end_matches(','))
        };
        let out = check_reports(&report(1, 1.0, 1.0), &base).unwrap();
        assert!(out.failures.is_empty(), "{:?}", out.failures);
    }

    #[test]
    fn garbage_input_is_an_error_not_a_panic() {
        assert!(check_reports("not json", &report(1, 1.0, 1.0)).is_err());
        assert!(check_reports(&report(1, 1.0, 1.0), "{}").is_err());
    }
}
