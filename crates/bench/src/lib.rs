//! Shared plumbing for the figure/table reproduction binaries.
//!
//! Every binary accepts:
//!
//! - `--quick` — CI-sized smoke run (seconds);
//! - `--full`  — paper-scale parameters (the default is laptop-scale,
//!   minutes);
//! - `--csv DIR` — additionally dump every printed series as CSV;
//! - `--seed N` — override the base RNG seed.
//!
//! The EXPERIMENTS.md protocol records the *default*-scale outputs; `--full`
//! reproduces the paper's exact parameters where hardware allows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cgte_eval::Table;
use std::path::PathBuf;

/// Run scale selected on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Smoke-test parameters.
    Quick,
    /// Laptop-scale defaults (graphs scaled down ~10×).
    Default,
    /// The paper's parameters.
    Full,
}

/// Parsed common CLI options.
#[derive(Debug, Clone)]
pub struct RunArgs {
    /// Selected scale.
    pub scale: Scale,
    /// Where to dump CSV series, if requested.
    pub csv_dir: Option<PathBuf>,
    /// Base RNG seed.
    pub seed: u64,
}

impl RunArgs {
    /// Parses `std::env::args()`; exits with a message on unknown flags.
    pub fn parse() -> RunArgs {
        let mut scale = Scale::Default;
        let mut csv_dir = None;
        let mut seed = 0x2012_5EED;
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => scale = Scale::Quick,
                "--full" => scale = Scale::Full,
                "--csv" => {
                    let dir = it.next().unwrap_or_else(|| {
                        eprintln!("--csv needs a directory");
                        std::process::exit(2);
                    });
                    csv_dir = Some(PathBuf::from(dir));
                }
                "--seed" => {
                    seed = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                        eprintln!("--seed needs an integer");
                        std::process::exit(2);
                    });
                }
                other => {
                    eprintln!(
                        "unknown flag {other:?} (supported: --quick --full --csv DIR --seed N)"
                    );
                    std::process::exit(2);
                }
            }
        }
        RunArgs {
            scale,
            csv_dir,
            seed,
        }
    }

    /// Picks a value by scale.
    pub fn pick<T: Copy>(&self, quick: T, default: T, full: T) -> T {
        match self.scale {
            Scale::Quick => quick,
            Scale::Default => default,
            Scale::Full => full,
        }
    }

    /// Saves an SVG log-log plot of the given series next to the CSVs (no-op
    /// without `--csv`).
    pub fn emit_plot(&self, name: &str, title: &str, series: Vec<cgte_viz::PlotSeries>) {
        let Some(dir) = &self.csv_dir else { return };
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {dir:?}: {e}");
            return;
        }
        let opts = cgte_viz::PlotOptions {
            title: title.into(),
            ..Default::default()
        };
        let svg = cgte_viz::svg_line_plot(&series, &opts);
        let path = dir.join(format!("{name}.svg"));
        match std::fs::write(&path, svg) {
            Ok(()) => eprintln!("saved {path:?}"),
            Err(e) => eprintln!("cannot save {path:?}: {e}"),
        }
    }

    /// Prints a table under a heading and optionally saves it as CSV.
    pub fn emit(&self, name: &str, heading: &str, table: &Table) {
        println!("\n## {heading}\n");
        print!("{table}");
        if let Some(dir) = &self.csv_dir {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create {dir:?}: {e}");
                return;
            }
            let path = dir.join(format!("{name}.csv"));
            match table.save_csv(&path) {
                Ok(()) => eprintln!("saved {path:?}"),
                Err(e) => eprintln!("cannot save {path:?}: {e}"),
            }
        }
    }
}

/// Formats an NRMSE value compactly, with a placeholder for undefined.
pub fn fmt_nrmse(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.4}")
    } else {
        "-".into()
    }
}

/// Logarithmically spaced sample sizes from `lo` to `hi` (inclusive-ish),
/// `points` per decade boundary style of the paper's x-axes.
pub fn log_sizes(lo: usize, hi: usize, points: usize) -> Vec<usize> {
    assert!(lo >= 1 && hi >= lo && points >= 2);
    let (l, h) = ((lo as f64).ln(), (hi as f64).ln());
    let mut v: Vec<usize> = (0..points)
        .map(|i| (l + (h - l) * i as f64 / (points - 1) as f64).exp().round() as usize)
        .collect();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_sizes_spans_range() {
        let v = log_sizes(100, 10_000, 5);
        assert_eq!(v.first(), Some(&100));
        assert_eq!(v.last(), Some(&10_000));
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn fmt_nrmse_handles_nan() {
        assert_eq!(fmt_nrmse(f64::NAN), "-");
        assert_eq!(fmt_nrmse(0.12345), "0.1235");
    }

    #[test]
    fn pick_selects_by_scale() {
        let a = RunArgs {
            scale: Scale::Quick,
            csv_dir: None,
            seed: 0,
        };
        assert_eq!(a.pick(1, 2, 3), 1);
        let a = RunArgs {
            scale: Scale::Full,
            csv_dir: None,
            seed: 0,
        };
        assert_eq!(a.pick(1, 2, 3), 3);
    }
}
