//! Shared plumbing for the figure/table reproduction binaries.
//!
//! Every binary is a thin shim over its embedded scenario in
//! [`cgte_scenarios`]: it parses the common flags and hands off to the
//! scenario engine, which schedules the figure's jobs on a worker pool
//! with a shared graph cache. Every binary accepts:
//!
//! - `--quick` — CI-sized smoke run (seconds);
//! - `--full`  — paper-scale parameters (the default is laptop-scale,
//!   minutes);
//! - `--csv DIR` — additionally dump every printed series as CSV;
//! - `--seed N` — override the base RNG seed;
//! - `--threads N` — scheduler worker threads (0 = all cores);
//! - `--out DIR` — persist per-job artifacts + a run manifest;
//! - `--resume` — skip jobs already completed under `--out DIR`.
//!
//! The EXPERIMENTS.md protocol records the *default*-scale outputs; `--full`
//! reproduces the paper's exact parameters where hardware allows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod harness;

pub use cgte_scenarios::{fmt_nrmse, log_sizes, RunOptions, Scale};
use std::path::PathBuf;

/// Parsed common CLI options.
#[derive(Debug, Clone)]
pub struct RunArgs {
    /// Selected scale.
    pub scale: Scale,
    /// Where to dump CSV series, if requested.
    pub csv_dir: Option<PathBuf>,
    /// Base RNG seed.
    pub seed: u64,
    /// Scheduler worker threads (0 = all available cores).
    pub threads: usize,
    /// Run directory for job artifacts and the resume manifest.
    pub out_dir: Option<PathBuf>,
    /// Resume from an interrupted run under `--out DIR`.
    pub resume: bool,
}

impl RunArgs {
    /// Parses `std::env::args()`; exits with a message on unknown flags.
    pub fn parse() -> RunArgs {
        let mut scale = Scale::Default;
        let mut csv_dir = None;
        let mut seed = 0x2012_5EED;
        let mut threads = 0;
        let mut out_dir = None;
        let mut resume = false;
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => scale = Scale::Quick,
                "--full" => scale = Scale::Full,
                "--huge" => scale = Scale::Huge,
                "--csv" => {
                    let dir = it.next().unwrap_or_else(|| {
                        eprintln!("--csv needs a directory");
                        std::process::exit(2);
                    });
                    csv_dir = Some(PathBuf::from(dir));
                }
                "--out" => {
                    let dir = it.next().unwrap_or_else(|| {
                        eprintln!("--out needs a directory");
                        std::process::exit(2);
                    });
                    out_dir = Some(PathBuf::from(dir));
                }
                "--resume" => resume = true,
                "--seed" => {
                    seed = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                        eprintln!("--seed needs an integer");
                        std::process::exit(2);
                    });
                }
                "--threads" => {
                    threads = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                        eprintln!("--threads needs an integer");
                        std::process::exit(2);
                    });
                }
                other => {
                    eprintln!(
                        "unknown flag {other:?} (supported: --quick --full --huge --csv DIR --seed N --threads N --out DIR --resume)"
                    );
                    std::process::exit(2);
                }
            }
        }
        if resume && out_dir.is_none() {
            eprintln!("--resume requires --out DIR (the run directory holding the manifest)");
            std::process::exit(2);
        }
        RunArgs {
            scale,
            csv_dir,
            seed,
            threads,
            out_dir,
            resume,
        }
    }

    /// The scenario-engine options equivalent to these flags.
    pub fn to_run_options(&self) -> RunOptions {
        RunOptions {
            scale: self.scale,
            seed: Some(self.seed),
            csv_dir: self.csv_dir.clone(),
            threads: self.threads,
            out_dir: self.out_dir.clone(),
            resume: self.resume,
            quiet: false,
            cache_dir: None,
            mmap: false,
        }
    }

    /// Picks a value by scale. The `huge` tier reuses the `full` value —
    /// legacy binaries have no dedicated huge parameters.
    pub fn pick<T: Copy>(&self, quick: T, default: T, full: T) -> T {
        match self.scale {
            Scale::Quick => quick,
            Scale::Default => default,
            Scale::Full | Scale::Huge => full,
        }
    }
}

/// Runs a built-in scenario with the parsed flags, exiting non-zero on
/// engine errors — the whole body of every figure binary.
pub fn run_builtin_main(name: &str) {
    let args = RunArgs::parse();
    if let Err(e) = cgte_scenarios::run_builtin(name, &args.to_run_options()) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_sizes_spans_range() {
        let v = log_sizes(100, 10_000, 5);
        assert_eq!(v.first(), Some(&100));
        assert_eq!(v.last(), Some(&10_000));
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn fmt_nrmse_handles_nan() {
        assert_eq!(fmt_nrmse(f64::NAN), "-");
        assert_eq!(fmt_nrmse(0.12345), "0.1235");
    }

    #[test]
    fn pick_selects_by_scale() {
        let a = RunArgs {
            scale: Scale::Quick,
            csv_dir: None,
            seed: 0,
            threads: 0,
            out_dir: None,
            resume: false,
        };
        assert_eq!(a.pick(1, 2, 3), 1);
        let a = RunArgs {
            scale: Scale::Full,
            ..a
        };
        assert_eq!(a.pick(1, 2, 3), 3);
    }

    #[test]
    fn run_options_carry_flags() {
        let a = RunArgs {
            scale: Scale::Quick,
            csv_dir: Some(PathBuf::from("/tmp/x")),
            seed: 7,
            threads: 3,
            out_dir: Some(PathBuf::from("/tmp/run")),
            resume: true,
        };
        let o = a.to_run_options();
        assert_eq!(o.seed, Some(7));
        assert_eq!(o.threads, 3);
        assert!(o.resume);
        assert_eq!(o.out_dir.as_deref(), Some(std::path::Path::new("/tmp/run")));
    }
}
