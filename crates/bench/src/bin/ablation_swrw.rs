//! Ablation A3 (§6.3.3): S-WRW stratification strength.
//!
//! Our S-WRW assigns category weights `γ_C = vol(C)^(−β)`: β = 0 reduces to
//! the plain RW, β = 1 is the paper's equal-category-mass target. Sweeping
//! β quantifies how much of S-WRW's advantage on small categories (the
//! paper's colleges) is bought by stratification, and whether
//! over-stratification hurts the large-category estimates.

use cgte_bench::{fmt_nrmse, log_sizes, RunArgs};
use cgte_core::category_size::{star_sizes, StarSizeOptions};
use cgte_datasets::{FacebookSim, FacebookSimConfig};
use cgte_eval::{median, Table};
use cgte_graph::NodeId;
use cgte_sampling::{NodeSampler, StarSample, Swrw};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = RunArgs::parse();
    let mut cfg = match args.scale {
        cgte_bench::Scale::Quick => FacebookSimConfig::quick(),
        cgte_bench::Scale::Default => FacebookSimConfig {
            num_users: 30_000,
            num_regions: 100,
            num_countries: 20,
            num_colleges: 300,
            ..Default::default()
        },
        cgte_bench::Scale::Full => FacebookSimConfig::default(),
    };
    cfg.college_fraction = cfg.college_fraction.max(0.035);
    let reps = args.pick(4, 10, 25);
    let betas = [0.0f64, 0.25, 0.5, 0.75, 1.0];
    let sample_sizes = match args.scale {
        cgte_bench::Scale::Quick => log_sizes(300, 1500, 2),
        _ => log_sizes(1000, 20_000, 3),
    };

    eprintln!("A3: simulating population ({} users)...", cfg.num_users);
    let mut rng = StdRng::seed_from_u64(args.seed);
    let sim = FacebookSim::generate(&cfg, &mut rng);
    let p = &sim.colleges;
    let n_colleges = sim.config().num_colleges;
    let population = sim.graph.num_nodes() as f64;
    let truth: Vec<f64> = p.sizes().iter().map(|&s| s as f64).collect();

    // Per-category volumes, for γ_C = vol(C)^(-β).
    let mut vol = vec![0f64; p.num_categories()];
    for v in 0..sim.graph.num_nodes() {
        vol[p.category_of(v as NodeId) as usize] += sim.graph.degree(v as NodeId) as f64;
    }

    let colleges: Vec<usize> = (0..n_colleges).collect();
    let mut headers = vec!["|S|".to_string()];
    for b in betas {
        headers.push(format!("β={b}"));
    }
    let mut t = Table::new(headers);
    let mut cols: Vec<Vec<f64>> = Vec::new();
    for &beta in &betas {
        eprintln!("A3: β = {beta} ({reps} reps)...");
        let gamma: Vec<f64> = vol
            .iter()
            .map(|&x| if x > 0.0 { x.powf(-beta) } else { 0.0 })
            .collect();
        let swrw = Swrw::new(p, gamma).expect("valid weights").burn_in(1000);
        let mut col = Vec::new();
        for (si, &s) in sample_sizes.iter().enumerate() {
            let _ = si;
            let mut errs = vec![0.0f64; p.num_categories()];
            for rep in 0..reps {
                let mut rng = StdRng::seed_from_u64(args.seed + 31 + rep as u64);
                let nodes = swrw.sample(&sim.graph, s, &mut rng);
                let star = StarSample::observe_sampler(&sim.graph, p, &nodes, &swrw);
                let est = star_sizes(&star, population, &StarSizeOptions::default());
                for &c in &colleges {
                    errs[c] += (est[c].unwrap_or(0.0) - truth[c]).powi(2);
                }
            }
            let per_cat: Vec<f64> = colleges
                .iter()
                .filter(|&&c| truth[c] > 0.0)
                .map(|&c| (errs[c] / reps as f64).sqrt() / truth[c])
                .collect();
            col.push(median(&per_cat).unwrap_or(f64::NAN));
        }
        cols.push(col);
    }
    for (i, &s) in sample_sizes.iter().enumerate() {
        let mut row = vec![s.to_string()];
        for c in &cols {
            row.push(fmt_nrmse(c[i]));
        }
        t.row(row);
    }
    args.emit(
        "ablation_swrw",
        &format!(
            "A3: S-WRW stratification sweep — median NRMSE(|Â|) over {n_colleges} colleges, star sizes"
        ),
        &t,
    );
    println!("\nExpected: college-size NRMSE falls monotonically with β (β=0 is plain RW,");
    println!("which leaves most colleges unsampled); the paper's configuration is β=1.");
}
