//! Ablation A3 (§6.3.3): S-WRW stratification strength — thin shim over the embedded
//! `ablation_swrw` scenario; the tables and expected shapes are documented in
//! EXPERIMENTS.md and in `crates/cgte-scenarios/scenarios/ablation_swrw.scn`.

fn main() {
    cgte_bench::run_builtin_main("ablation_swrw");
}
