//! Reproduces Table 1: the empirical evaluation topologies.
//!
//! Prints the published statistics next to those of the generated
//! stand-ins (DESIGN.md substitution 1); at `--full` the node counts match
//! exactly and the mean degrees match in expectation.

use cgte_bench::RunArgs;
use cgte_datasets::{standin, StandinKind};
use cgte_eval::Table;
use cgte_graph::algorithms::DegreeStats;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = RunArgs::parse();
    let scale_div = args.pick(60, 8, 1);
    let mut t = Table::new(
        [
            "Dataset",
            "|V| paper",
            "|V| ours",
            "|E| ours",
            "kV paper",
            "kV ours",
            "max deg",
            "deg CV",
        ]
        .map(String::from)
        .to_vec(),
    );
    for kind in StandinKind::ALL {
        eprintln!(
            "table1: generating {} (scale 1/{scale_div})...",
            kind.name()
        );
        let mut rng = StdRng::seed_from_u64(args.seed ^ (kind as u64).wrapping_mul(0x9E37));
        let g = standin(kind, scale_div, &mut rng);
        let (v_pub, kv_pub) = kind.published();
        let stats = DegreeStats::of(&g);
        t.row(vec![
            kind.name().into(),
            v_pub.to_string(),
            g.num_nodes().to_string(),
            g.num_edges().to_string(),
            format!("{kv_pub:.1}"),
            format!("{:.1}", g.mean_degree()),
            stats.max.to_string(),
            format!("{:.2}", stats.cv),
        ]);
    }
    args.emit(
        "table1",
        &format!("Table 1: empirical topologies (stand-ins, scale 1/{scale_div})"),
        &t,
    );
    println!("\nNote: |V|, kV are matched to the paper; |E| follows from them.");
    println!("The high degree CV column documents the skew §6.3.2 attributes the");
    println!("star size estimator's difficulties to.");
}
