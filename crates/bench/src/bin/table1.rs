//! Table 1: the empirical evaluation topologies — thin shim over the embedded
//! `table1` scenario; the tables and expected shapes are documented in
//! EXPERIMENTS.md and in `crates/cgte-scenarios/scenarios/table1.scn`.

fn main() {
    cgte_bench::run_builtin_main("table1");
}
