//! Fig. 4: estimation on empirically-observed topologies under UIS, RW and S-WRW — thin shim over the embedded
//! `fig4` scenario; the tables and expected shapes are documented in
//! EXPERIMENTS.md and in `crates/cgte-scenarios/scenarios/fig4.scn`.

fn main() {
    cgte_bench::run_builtin_main("fig4");
}
