//! Reproduces Fig. 4: estimation on empirically-observed topologies
//! (Table 1 stand-ins) under UIS, RW and S-WRW.
//!
//! For each of the four datasets, reports the **median NRMSE across
//! categories** of the size estimators (top row) and the median NRMSE
//! across a weight-spectrum of edges for the edge-weight estimators
//! (bottom row), for every sampler × {induced, star}.
//!
//! Expected shape (paper §6.3): for sizes there is no universal winner —
//! induced can beat star under UIS on these degree-skewed graphs, while
//! star wins under RW/S-WRW; for edge weights star wins consistently
//! (induced needs 5–10× more samples); samplers order UIS > S-WRW > RW.
//!
//! Categories are built as in the paper: the 50 largest communities (20 at
//! default scale) plus one rest category, found by the spectral
//! (leading-eigenvector) community finder of the paper's \[47\].

use cgte_bench::{fmt_nrmse, log_sizes, RunArgs, Scale};
use cgte_core::Design;
use cgte_datasets::{standin, standin_partition, StandinKind};
use cgte_eval::{
    median, run_experiment, EstimatorKind, ExperimentConfig, ExperimentResult, Table, Target,
};
use cgte_graph::{CategoryGraph, Graph, Partition};
use cgte_sampling::{AnySampler, RandomWalk, Swrw, UniformIndependence};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn weight_targets(exact: &CategoryGraph, max_edges: usize) -> Vec<Target> {
    let mut edges = exact.edges_by_weight();
    if edges.is_empty() {
        return Vec::new();
    }
    edges.retain(|e| e.weight > 0.0);
    let stride = (edges.len() / max_edges).max(1);
    edges
        .iter()
        .step_by(stride)
        .take(max_edges)
        .map(|e| Target::Weight(e.a, e.b))
        .collect()
}

fn median_series(res: &ExperimentResult, kind: EstimatorKind, n_sizes: usize) -> Vec<f64> {
    (0..n_sizes)
        .map(|i| median(&res.nrmse_across_targets(kind, i)).unwrap_or(f64::NAN))
        .collect()
}

fn main() {
    let args = RunArgs::parse();
    let scale_div = args.pick(60, 8, 1);
    let reps = args.pick(6, 25, 60);
    let top_k = args.pick(8, 20, 50);
    let spectral = true;
    let sizes = match args.scale {
        Scale::Quick => log_sizes(100, 1000, 3),
        Scale::Default => log_sizes(300, 30_000, 5),
        Scale::Full => log_sizes(1000, 100_000, 5),
    };
    let max_weight_targets = args.pick(10, 30, 60);
    let burn = *sizes.last().unwrap() / 10;

    for kind in StandinKind::ALL {
        eprintln!("fig4: generating {} (scale 1/{scale_div})...", kind.name());
        let mut rng = StdRng::seed_from_u64(args.seed ^ (kind as u64).wrapping_mul(0x9E37));
        let g: Graph = standin(kind, scale_div, &mut rng);
        let p: Partition = standin_partition(&g, top_k, spectral, &mut rng);
        let exact = CategoryGraph::exact(&g, &p);

        let mut targets: Vec<Target> = (0..p.num_categories() as u32).map(Target::Size).collect();
        let wt = weight_targets(&exact, max_weight_targets);
        targets.extend(&wt);

        let samplers = [
            AnySampler::Uis(UniformIndependence),
            AnySampler::Rw(RandomWalk::new().burn_in(burn)),
            AnySampler::Swrw(
                Swrw::equal_category_target(&g, &p)
                    .expect("partition has volume")
                    .burn_in(burn),
            ),
        ];

        let mut size_table = {
            let mut h = vec!["|S|".to_string()];
            for s in &samplers {
                h.push(format!("{}/induced", s.name()));
                h.push(format!("{}/star", s.name()));
            }
            Table::new(h)
        };
        let mut weight_table = {
            let mut h = vec!["|S|".to_string()];
            for s in &samplers {
                h.push(format!("{}/induced", s.name()));
                h.push(format!("{}/star", s.name()));
            }
            Table::new(h)
        };

        let mut size_cols: Vec<Vec<f64>> = Vec::new();
        let mut weight_cols: Vec<Vec<f64>> = Vec::new();
        for sampler in &samplers {
            eprintln!(
                "fig4: {} under {} ({} reps)...",
                kind.name(),
                sampler.name(),
                reps
            );
            let cfg = ExperimentConfig::new(sizes.clone(), reps)
                .seed(args.seed)
                .design(if matches!(sampler, AnySampler::Uis(_)) {
                    Design::Uniform
                } else {
                    Design::Weighted
                });
            let res = run_experiment(&g, &p, sampler, &targets, &cfg);
            size_cols.push(median_series(&res, EstimatorKind::InducedSize, sizes.len()));
            size_cols.push(median_series(&res, EstimatorKind::StarSize, sizes.len()));
            weight_cols.push(median_series(
                &res,
                EstimatorKind::InducedWeight,
                sizes.len(),
            ));
            weight_cols.push(median_series(&res, EstimatorKind::StarWeight, sizes.len()));
        }
        for (i, &s) in sizes.iter().enumerate() {
            let mut row = vec![s.to_string()];
            row.extend(size_cols.iter().map(|c| fmt_nrmse(c[i])));
            size_table.row(row);
            let mut row = vec![s.to_string()];
            row.extend(weight_cols.iter().map(|c| fmt_nrmse(c[i])));
            weight_table.row(row);
        }

        let tag = match kind {
            StandinKind::FacebookTexas => "texas",
            StandinKind::FacebookNewOrleans => "neworleans",
            StandinKind::P2p => "p2p",
            StandinKind::Epinions => "epinions",
        };
        args.emit(
            &format!("fig4_size_{tag}"),
            &format!(
                "Fig. 4 (top) {}: median NRMSE(|Â|) across {} categories ({} nodes, kV={:.1})",
                kind.name(),
                p.num_categories(),
                g.num_nodes(),
                g.mean_degree()
            ),
            &size_table,
        );
        args.emit(
            &format!("fig4_weight_{tag}"),
            &format!(
                "Fig. 4 (bottom) {}: median NRMSE(ŵ) across {} edges",
                kind.name(),
                wt.len()
            ),
            &weight_table,
        );
    }
    println!("\nfig4 done. Expected: weight/star ≪ weight/induced for every sampler;");
    println!("UIS best overall; S-WRW ≥ RW; star sizes win under RW/S-WRW but can lose under UIS.");
}
