//! Ablation A1 (paper footnote 4): the model-based star size estimator
//! `k̂_A := k̂_V`.
//!
//! On degree-skewed graphs the plug-in `k̂_A` is the star size estimator's
//! weak point (§6.3.2). The model-based variant trades that variance for
//! bias. This ablation quantifies the tradeoff on the Epinions stand-in
//! (the most skewed Table 1 graph) under UIS and RW: NRMSE of the plug-in
//! star, model-based star, and induced size estimators.
//!
//! Expected: model-based wins at small |S| (variance-dominated), the
//! plug-in catches up or wins at large |S| where its variance shrinks but
//! the model bias stays.

use cgte_bench::{fmt_nrmse, log_sizes, RunArgs};
use cgte_core::category_size::{induced_sizes, star_sizes, StarSizeOptions};
use cgte_datasets::{standin, standin_partition, StandinKind};
use cgte_eval::{median, Table};
use cgte_sampling::{AnySampler, NodeSampler, RandomWalk, StarSample, UniformIndependence};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = RunArgs::parse();
    let scale_div = args.pick(60, 10, 1);
    let reps = args.pick(8, 40, 100);
    let top_k = args.pick(6, 15, 50);
    let sizes = match args.scale {
        cgte_bench::Scale::Quick => log_sizes(100, 1000, 3),
        cgte_bench::Scale::Default => log_sizes(200, 20_000, 5),
        cgte_bench::Scale::Full => log_sizes(1000, 100_000, 5),
    };

    eprintln!("A1: generating Epinions stand-in (scale 1/{scale_div})...");
    let mut rng = StdRng::seed_from_u64(args.seed);
    let g = standin(StandinKind::Epinions, scale_div, &mut rng);
    let p = standin_partition(&g, top_k, true, &mut rng);
    let truth: Vec<f64> = p.sizes().iter().map(|&s| s as f64).collect();
    let population = g.num_nodes() as f64;
    let num_c = p.num_categories();

    for (sampler, label) in [
        (AnySampler::Uis(UniformIndependence), "UIS"),
        (AnySampler::Rw(RandomWalk::new().burn_in(2000)), "RW"),
    ] {
        eprintln!("A1: running {label} ({reps} reps)...");
        let mut t = Table::new(
            ["|S|", "induced", "star(plug-in k̂_A)", "star(k̂_A = k̂_V)"]
                .map(String::from)
                .to_vec(),
        );
        // sum of squared errors [estimator][size][category]
        let mut errs = vec![vec![vec![0.0f64; num_c]; sizes.len()]; 3];
        for rep in 0..reps {
            let mut rng = StdRng::seed_from_u64(args.seed + 1000 + rep as u64);
            let nodes = sampler.sample(&g, *sizes.last().unwrap(), &mut rng);
            for (si, &s) in sizes.iter().enumerate() {
                let star = if label == "UIS" {
                    StarSample::observe(&g, &p, &nodes[..s])
                } else {
                    StarSample::observe_sampler(&g, &p, &nodes[..s], &sampler)
                };
                let ind = induced_sizes(&star, population).unwrap_or_else(|| vec![0.0; num_c]);
                let plug = star_sizes(&star, population, &StarSizeOptions::default());
                let model = star_sizes(
                    &star,
                    population,
                    &StarSizeOptions {
                        model_based_mean_degree: true,
                    },
                );
                for c in 0..num_c {
                    errs[0][si][c] += (ind[c] - truth[c]).powi(2);
                    errs[1][si][c] += (plug[c].unwrap_or(0.0) - truth[c]).powi(2);
                    errs[2][si][c] += (model[c].unwrap_or(0.0) - truth[c]).powi(2);
                }
            }
        }
        for (si, &s) in sizes.iter().enumerate() {
            let mut row = vec![s.to_string()];
            for e in &errs {
                let per_cat: Vec<f64> = (0..num_c)
                    .filter(|&c| truth[c] > 0.0)
                    .map(|c| (e[si][c] / reps as f64).sqrt() / truth[c])
                    .collect();
                row.push(fmt_nrmse(median(&per_cat).unwrap_or(f64::NAN)));
            }
            t.row(row);
        }
        args.emit(
            &format!("ablation_model_based_{}", label.to_lowercase()),
            &format!(
                "A1 ({label}): median NRMSE(|Â|) across {num_c} categories, Epinions stand-in"
            ),
            &t,
        );
    }
    println!("\nExpected: the model-based column dominates at small |S| and concedes");
    println!("to the plug-in at large |S| (precision-vs-accuracy, footnote 4).");
}
