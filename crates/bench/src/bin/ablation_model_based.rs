//! Ablation A1 (footnote 4): the model-based star size estimator — thin shim over the embedded
//! `ablation_model_based` scenario; the tables and expected shapes are documented in
//! EXPERIMENTS.md and in `crates/cgte-scenarios/scenarios/ablation_model_based.scn`.

fn main() {
    cgte_bench::run_builtin_main("ablation_model_based");
}
