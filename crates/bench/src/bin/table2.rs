//! Table 2: the Facebook crawl datasets — thin shim over the embedded
//! `table2` scenario; the tables and expected shapes are documented in
//! EXPERIMENTS.md and in `crates/cgte-scenarios/scenarios/table2.scn`.

fn main() {
    cgte_bench::run_builtin_main("table2");
}
