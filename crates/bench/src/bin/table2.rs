//! Reproduces Table 2: the Facebook crawl datasets.
//!
//! Simulates the Facebook-like population (DESIGN.md substitution 2) and
//! collects the five crawl datasets of the paper: MHRW09 / RW09 / UIS09
//! over 507 regional networks and RW10 / S-WRW10 over the college
//! networks, printing the "% categ. samples" and "# total samples" columns.
//!
//! Expected shape: regions cover ~34 % of users, so the 2009 crawls land
//! 30–45 % of their samples in studied categories; colleges cover ~3.5 %,
//! so RW10 lands only a few percent while S-WRW10's stratification pushes
//! it far higher (the paper reports 9 % vs 86 %).

use cgte_bench::RunArgs;
use cgte_datasets::{FacebookSim, FacebookSimConfig};
use cgte_eval::Table;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = RunArgs::parse();
    let mut cfg = match args.scale {
        cgte_bench::Scale::Quick => FacebookSimConfig::quick(),
        cgte_bench::Scale::Default => FacebookSimConfig::default(),
        cgte_bench::Scale::Full => FacebookSimConfig {
            num_users: 1_000_000,
            num_colleges: 10_000,
            ..Default::default()
        },
    };
    cfg.num_regions = args.pick(40, 507, 507);
    let (num_walks_09, num_walks_10) = (28, 25);
    let per_walk = args.pick(500, 5_000, 81_000);
    let per_walk_10 = args.pick(500, 5_000, 40_000);

    eprintln!("table2: simulating population ({} users)...", cfg.num_users);
    let mut rng = StdRng::seed_from_u64(args.seed);
    let sim = FacebookSim::generate(&cfg, &mut rng);
    eprintln!("table2: running 2009 crawls ({num_walks_09} x {per_walk})...");
    let c09 = sim.crawl_2009(num_walks_09, per_walk, &mut rng);
    eprintln!("table2: running 2010 crawls ({num_walks_10} x {per_walk_10})...");
    let c10 = sim.crawl_2010(num_walks_10, per_walk_10, &mut rng);

    let n_regions = sim.config().num_regions;
    let n_colleges = sim.config().num_colleges;
    let region_pop: u64 = (0..n_regions as u32)
        .map(|r| sim.regions.category_size(r))
        .sum();
    let college_pop: u64 = (0..n_colleges as u32)
        .map(|c| sim.colleges.category_size(c))
        .sum();
    let n = sim.graph.num_nodes() as f64;

    let mut t = Table::new(
        [
            "Dataset",
            "Studied categories",
            "Crawl type",
            "% categ. samples",
            "# total samples",
        ]
        .map(String::from)
        .to_vec(),
    );
    for ds in &c09 {
        let frac = ds.studied_fraction(&sim.regions, |c| (c as usize) < n_regions);
        t.row(vec![
            "2009".into(),
            format!(
                "Regional ({n_regions}) — {:.0}% of population",
                100.0 * region_pop as f64 / n
            ),
            ds.name.clone(),
            format!("{:.0}%", 100.0 * frac),
            format!("{}x{}", ds.walks.num_walks(), ds.walks.walk(0).len()),
        ]);
    }
    for ds in &c10 {
        let frac = ds.studied_fraction(&sim.colleges, |c| (c as usize) < n_colleges);
        t.row(vec![
            "2010".into(),
            format!(
                "Colleges ({n_colleges}) — {:.1}% of population",
                100.0 * college_pop as f64 / n
            ),
            ds.name.clone(),
            format!("{:.0}%", 100.0 * frac),
            format!("{}x{}", ds.walks.num_walks(), ds.walks.walk(0).len()),
        ]);
    }
    args.emit("table2", "Table 2: Facebook crawl datasets (simulated)", &t);
    println!("\nPaper reference values: MHRW09 34%, RW09 41%, UIS09 34% (28 walks);");
    println!("RW10 9%, S-WRW10 86% (25 walks). Shape check: RW09 ≥ UIS09 (homophily");
    println!("draws walks into large declared regions) and S-WRW10 ≫ RW10.");
}
