//! Reproduces Fig. 3: UIS on synthetic (planted-partition) graphs.
//!
//! Top row — category size estimation NRMSE(|Â|) vs |S|:
//!   (a) density sweep k ∈ {5, 49};  (b) community tightness α ∈ {0, 1};
//!   (c) category size |C| (small vs large);  (d) CDF over all 10 categories.
//! Bottom row — edge weight estimation NRMSE(ŵ) vs |S|:
//!   (e) density sweep;  (f) tightness sweep;  (g) e_low vs e_high;
//!   (h) CDF over all edges.
//!
//! Expected shape (paper §6.2): star beats induced for sizes on dense
//! graphs (a) but loses its edge when categories align with communities
//! (b, α = 0); for edge weights star wins consistently; larger targets are
//! easier (c, g).

use cgte_bench::{fmt_nrmse, log_sizes, RunArgs};
use cgte_core::Design;
use cgte_eval::{
    empirical_cdf, run_experiment, EstimatorKind, ExperimentConfig, ExperimentResult, Table, Target,
};
use cgte_graph::generators::{planted_partition, PlantedConfig, PlantedGraph};
use cgte_graph::CategoryGraph;
use cgte_sampling::{AnySampler, UniformIndependence};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Panel {
    /// (curve label, experiment result) pairs sharing an x-axis.
    curves: Vec<(
        String,
        ExperimentResult,
        Target,
        EstimatorKind,
        EstimatorKind,
    )>,
    sizes: Vec<usize>,
}

impl Panel {
    fn plot_series(&self) -> Vec<cgte_viz::PlotSeries> {
        let xs: Vec<f64> = self.sizes.iter().map(|&s| s as f64).collect();
        let mut out = Vec::new();
        for (label, res, target, ind, star) in &self.curves {
            for (kind, suffix) in [(ind, "induced"), (star, "star")] {
                let ys = res.nrmse(*kind, *target).expect("tracked");
                out.push(cgte_viz::PlotSeries {
                    label: format!("{label}/{suffix}"),
                    points: xs.iter().copied().zip(ys.iter().copied()).collect(),
                });
            }
        }
        out
    }

    fn table(&self) -> Table {
        let mut headers = vec!["|S|".to_string()];
        for (label, ..) in &self.curves {
            headers.push(format!("{label}/induced"));
            headers.push(format!("{label}/star"));
        }
        let mut t = Table::new(headers);
        for (i, &s) in self.sizes.iter().enumerate() {
            let mut row = vec![s.to_string()];
            for (_, res, target, ind, star) in &self.curves {
                row.push(fmt_nrmse(res.nrmse(*ind, *target).unwrap()[i]));
                row.push(fmt_nrmse(res.nrmse(*star, *target).unwrap()[i]));
            }
            t.row(row);
        }
        t
    }
}

fn main() {
    let args = RunArgs::parse();
    let scale_div = args.pick(60, 10, 1);
    let reps = args.pick(8, 40, 100);
    let sizes = match args.scale {
        cgte_bench::Scale::Quick => log_sizes(50, 500, 3),
        cgte_bench::Scale::Default => log_sizes(100, 10_000, 5),
        cgte_bench::Scale::Full => log_sizes(100, 100_000, 7),
    };
    let (k_lo, k_mid, k_hi) = args.pick((3, 6, 13), (5, 20, 49), (5, 20, 49));
    let cdf_size_idx = sizes.len() / 2; // the paper's fixed |S| = 2000 point

    let gen = |k: usize, alpha: f64, seed: u64| -> PlantedGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = if scale_div == 1 {
            PlantedConfig::paper(k, alpha)
        } else {
            PlantedConfig::scaled(scale_div, k, alpha)
        };
        planted_partition(&cfg, &mut rng).expect("feasible planted config")
    };
    eprintln!("fig3: generating graphs (scale 1/{scale_div}, k = {k_lo}/{k_mid}/{k_hi})...");
    let g_klo = gen(k_lo, 0.5, args.seed);
    let g_khi = gen(k_hi, 0.5, args.seed + 1);
    let g_a0 = gen(k_mid, 0.0, args.seed + 2);
    let g_a1 = gen(k_mid, 1.0, args.seed + 3);
    let g_mid = gen(k_mid, 0.5, args.seed + 4);

    let uis = AnySampler::Uis(UniformIndependence);
    let cfg = ExperimentConfig::new(sizes.clone(), reps)
        .seed(args.seed)
        .design(Design::Uniform);
    let run = |pg: &PlantedGraph, targets: &[Target]| -> ExperimentResult {
        run_experiment(&pg.graph, &pg.partition, &uis, targets, &cfg)
    };
    let ncat = g_mid.partition.num_categories() as u32;
    let biggest = Target::Size(ncat - 1);

    // Shared big run on the (k_mid, α=0.5) graph: all sizes + all edges.
    let mid_exact = CategoryGraph::exact(&g_mid.graph, &g_mid.partition);
    let mut mid_targets: Vec<Target> = (0..ncat).map(Target::Size).collect();
    let mut edge_targets: Vec<Target> = Vec::new();
    for a in 0..ncat {
        for b in (a + 1)..ncat {
            if mid_exact.weight(a, b) > 0.0 {
                edge_targets.push(Target::Weight(a, b));
            }
        }
    }
    mid_targets.extend(&edge_targets);
    eprintln!(
        "fig3: running experiments (|S| up to {}, {} reps)...",
        sizes.last().unwrap(),
        reps
    );
    let res_mid = run(&g_mid, &mid_targets);
    let e_low = mid_exact.weight_quantile_edge(0.25).expect("has edges");
    let e_high = mid_exact.weight_quantile_edge(0.75).expect("has edges");
    let t_low = Target::Weight(e_low.a, e_low.b);
    let t_high = Target::Weight(e_high.a, e_high.b);

    // Panels (a), (e): density sweep.
    let run_k = |pg: &PlantedGraph| {
        let ex = CategoryGraph::exact(&pg.graph, &pg.partition);
        let eh = ex.weight_quantile_edge(0.75).expect("has edges");
        let t = Target::Weight(eh.a, eh.b);
        (run(pg, &[biggest, t]), t)
    };
    let (res_klo, t_klo) = run_k(&g_klo);
    let (res_khi, t_khi) = run_k(&g_khi);
    let (res_a0, t_a0) = run_k(&g_a0);
    let (res_a1, t_a1) = run_k(&g_a1);

    let size_kinds = (EstimatorKind::InducedSize, EstimatorKind::StarSize);
    let weight_kinds = (EstimatorKind::InducedWeight, EstimatorKind::StarWeight);

    let panel = |curves: Vec<(
        String,
        &ExperimentResult,
        Target,
        (EstimatorKind, EstimatorKind),
    )>| {
        Panel {
            curves: curves
                .into_iter()
                .map(|(l, r, t, (i, s))| (l, r.clone(), t, i, s))
                .collect(),
            sizes: sizes.clone(),
        }
    };

    let a = panel(vec![
        (format!("k={k_lo}"), &res_klo, biggest, size_kinds),
        (format!("k={k_hi}"), &res_khi, biggest, size_kinds),
    ]);
    args.emit(
        "fig3a",
        "Fig. 3(a): NRMSE(|Â|), α=0.5, largest category, k sweep",
        &a.table(),
    );
    args.emit_plot("fig3a", "fig3a", a.plot_series());

    let b = panel(vec![
        ("α=0.0".into(), &res_a0, biggest, size_kinds),
        ("α=1.0".into(), &res_a1, biggest, size_kinds),
    ]);
    args.emit(
        "fig3b",
        &format!("Fig. 3(b): NRMSE(|Â|), k={k_mid}, largest category, α sweep"),
        &b.table(),
    );
    args.emit_plot("fig3b", "fig3b", b.plot_series());

    let small_cat = Target::Size(ncat.saturating_sub(7)); // |C| = 500 at paper scale
    let c = panel(vec![
        ("small |C|".into(), &res_mid, small_cat, size_kinds),
        ("large |C|".into(), &res_mid, biggest, size_kinds),
    ]);
    args.emit(
        "fig3c",
        &format!("Fig. 3(c): NRMSE(|Â|), k={k_mid}, α=0.5, category size effect"),
        &c.table(),
    );
    args.emit_plot("fig3c", "fig3c", c.plot_series());

    // Panel (d): CDF of size NRMSE over all categories at fixed |S|.
    {
        let mut t = Table::new(vec!["estimator".into(), "nrmse".into(), "cdf".into()]);
        for (kind, name) in [
            (EstimatorKind::InducedSize, "induced"),
            (EstimatorKind::StarSize, "star"),
        ] {
            let vals = res_mid.nrmse_across_targets(kind, cdf_size_idx);
            let (xs, fs) = empirical_cdf(&vals);
            for (x, f) in xs.iter().zip(&fs) {
                t.row(vec![name.into(), fmt_nrmse(*x), format!("{f:.2}")]);
            }
        }
        args.emit(
            "fig3d",
            &format!(
                "Fig. 3(d): CDF of NRMSE(|Â|) over all {ncat} categories at |S|={}",
                sizes[cdf_size_idx]
            ),
            &t,
        );
    }

    let e = panel(vec![
        (format!("k={k_lo}"), &res_klo, t_klo, weight_kinds),
        (format!("k={k_hi}"), &res_khi, t_khi, weight_kinds),
    ]);
    args.emit(
        "fig3e",
        "Fig. 3(e): NRMSE(ŵ), α=0.5, edge e_high, k sweep",
        &e.table(),
    );
    args.emit_plot("fig3e", "fig3e", e.plot_series());

    let f = panel(vec![
        ("α=0.0".into(), &res_a0, t_a0, weight_kinds),
        ("α=1.0".into(), &res_a1, t_a1, weight_kinds),
    ]);
    args.emit(
        "fig3f",
        &format!("Fig. 3(f): NRMSE(ŵ), k={k_mid}, edge e_high, α sweep"),
        &f.table(),
    );
    args.emit_plot("fig3f", "fig3f", f.plot_series());

    let g = panel(vec![
        ("e_low".into(), &res_mid, t_low, weight_kinds),
        ("e_high".into(), &res_mid, t_high, weight_kinds),
    ]);
    args.emit(
        "fig3g",
        &format!("Fig. 3(g): NRMSE(ŵ), k={k_mid}, α=0.5, e_low vs e_high"),
        &g.table(),
    );
    args.emit_plot("fig3g", "fig3g", g.plot_series());

    // Panel (h): CDF of weight NRMSE over all edges at fixed |S|.
    {
        let mut t = Table::new(vec!["estimator".into(), "nrmse".into(), "cdf".into()]);
        for (kind, name) in [
            (EstimatorKind::InducedWeight, "induced"),
            (EstimatorKind::StarWeight, "star"),
        ] {
            let vals = res_mid.nrmse_across_targets(kind, cdf_size_idx);
            let (xs, fs) = empirical_cdf(&vals);
            // Subsample long CDFs for printing; CSV gets every point.
            let stride = (xs.len() / 20).max(1);
            for (i, (x, f)) in xs.iter().zip(&fs).enumerate() {
                if i % stride == 0 || i + 1 == xs.len() {
                    t.row(vec![name.into(), fmt_nrmse(*x), format!("{f:.2}")]);
                }
            }
        }
        args.emit(
            "fig3h",
            &format!(
                "Fig. 3(h): CDF of NRMSE(ŵ) over all {} edges at |S|={}",
                edge_targets.len(),
                sizes[cdf_size_idx]
            ),
            &t,
        );
    }

    println!("\nfig3 done. Expected shape: star < induced for weights everywhere;");
    println!("star advantage for sizes grows with k and with α (see EXPERIMENTS.md).");
}
