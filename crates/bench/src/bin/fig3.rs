//! Fig. 3: UIS on synthetic (planted-partition) graphs — thin shim over the embedded
//! `fig3` scenario; the tables and expected shapes are documented in
//! EXPERIMENTS.md and in `crates/cgte-scenarios/scenarios/fig3.scn`.

fn main() {
    cgte_bench::run_builtin_main("fig3");
}
