//! Ablation A2 (§5.4): random-walk thinning.
//!
//! Thinning keeps every T-th visited node, reducing sample autocorrelation
//! at the cost of discarding (T−1)/T of the crawl. With the number of
//! *retained* samples held fixed, larger T means a longer crawl and less
//! correlated samples, so NRMSE should improve with T and saturate once
//! samples are effectively independent — quantifying the paper's remark
//! that thinning trades information for decorrelation, while plain RW
//! estimators remain consistent without it.

use cgte_bench::{fmt_nrmse, log_sizes, RunArgs};
use cgte_core::Design;
use cgte_eval::Table;
use cgte_eval::{run_experiment, EstimatorKind, ExperimentConfig, Target};
use cgte_graph::generators::{planted_partition, PlantedConfig};
use cgte_graph::CategoryGraph;
use cgte_sampling::{AnySampler, RandomWalk};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = RunArgs::parse();
    let scale_div = args.pick(60, 10, 1);
    let reps = args.pick(8, 40, 100);
    let k = args.pick(6, 20, 20);
    let sizes = match args.scale {
        cgte_bench::Scale::Quick => log_sizes(50, 500, 3),
        cgte_bench::Scale::Default => log_sizes(100, 5_000, 4),
        cgte_bench::Scale::Full => log_sizes(100, 50_000, 5),
    };
    let thinnings = [1usize, 2, 5, 10, 20];

    eprintln!("A2: generating planted graph (scale 1/{scale_div}, k={k}, α=0.5)...");
    let mut rng = StdRng::seed_from_u64(args.seed);
    let cfg_g = if scale_div == 1 {
        PlantedConfig::paper(k, 0.5)
    } else {
        PlantedConfig::scaled(scale_div, k, 0.5)
    };
    let pg = planted_partition(&cfg_g, &mut rng).expect("feasible config");
    let exact = CategoryGraph::exact(&pg.graph, &pg.partition);
    let ncat = pg.partition.num_categories() as u32;
    let e_high = exact.weight_quantile_edge(0.75).expect("has edges");
    let targets = [Target::Size(ncat - 1), Target::Weight(e_high.a, e_high.b)];

    let mut headers = vec!["|S| retained".to_string()];
    for t in thinnings {
        headers.push(format!("T={t} size/star"));
        headers.push(format!("T={t} weight/star"));
    }
    let mut table = Table::new(headers);
    let mut cols: Vec<Vec<f64>> = Vec::new();
    for t in thinnings {
        eprintln!("A2: thinning T={t} ({reps} reps)...");
        let sampler = AnySampler::Rw(RandomWalk::new().burn_in(500).thinning(t));
        let cfg = ExperimentConfig::new(sizes.clone(), reps)
            .seed(args.seed)
            .design(Design::Weighted);
        let res = run_experiment(&pg.graph, &pg.partition, &sampler, &targets, &cfg);
        cols.push(
            res.nrmse(EstimatorKind::StarSize, targets[0])
                .unwrap()
                .to_vec(),
        );
        cols.push(
            res.nrmse(EstimatorKind::StarWeight, targets[1])
                .unwrap()
                .to_vec(),
        );
    }
    for (i, &s) in sizes.iter().enumerate() {
        let mut row = vec![s.to_string()];
        for c in &cols {
            row.push(fmt_nrmse(c[i]));
        }
        table.row(row);
    }
    args.emit(
        "ablation_thinning",
        "A2: RW thinning sweep — star estimators, fixed retained |S|",
        &table,
    );
    println!("\nExpected: NRMSE improves (or saturates) as T grows at fixed retained |S| —");
    println!("the gain is what the discarded (T−1)/T of the crawl bought.");
}
