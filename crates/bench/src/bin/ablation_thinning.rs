//! Ablation A2 (§5.4): random-walk thinning — thin shim over the embedded
//! `ablation_thinning` scenario; the tables and expected shapes are documented in
//! EXPERIMENTS.md and in `crates/cgte-scenarios/scenarios/ablation_thinning.scn`.

fn main() {
    cgte_bench::run_builtin_main("ablation_thinning");
}
