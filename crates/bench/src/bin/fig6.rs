//! Reproduces Fig. 6: estimator performance on the Facebook crawls.
//!
//! (a, b): median NRMSE of category size estimates — 100 most popular
//! regions (2009) / colleges (2010); (c, d): median NRMSE of category edge
//! weight estimates. Each of the 28 (2009) / 25 (2010) walks is treated as
//! a separate sample, as in the paper; NRMSE is reported both against the
//! simulator's ground truth and, following the paper's protocol, against
//! the all-walk average estimate.
//!
//! Expected shape: UIS best, then S-WRW, RW, MHRW; star size estimators win
//! under RW/S-WRW (especially for the small 2010 colleges), induced can win
//! under UIS; for edge weights the star estimators dominate everywhere.

use cgte_bench::{fmt_nrmse, log_sizes, RunArgs};
use cgte_core::category_size::{induced_sizes, star_sizes, StarSizeOptions};
use cgte_core::edge_weight::{induced_weights_all, star_weights_all};
use cgte_datasets::{CrawlDataset, CrawlType, FacebookSim, FacebookSimConfig};
use cgte_eval::{median, Table};
use cgte_graph::{CategoryGraph, CategoryId, Partition};
use cgte_sampling::StarSample;
use rand::rngs::StdRng;
use rand::SeedableRng;

type Pair = (CategoryId, CategoryId);

/// `estimates[s][walk][target]` for one estimator family.
type EstimateTensor = Vec<Vec<Vec<f64>>>;

/// Per-walk, per-|S| estimates for one crawl dataset.
struct CrawlEstimates {
    /// `sizes_ind[s][walk][cat]`
    sizes_ind: Vec<Vec<Vec<f64>>>,
    sizes_star: Vec<Vec<Vec<f64>>>,
    /// `weights_ind[s][walk][pair]` aligned with the tracked pair list.
    weights_ind: Vec<Vec<Vec<f64>>>,
    weights_star: Vec<Vec<Vec<f64>>>,
}

fn evaluate_crawl(
    sim: &FacebookSim,
    ds: &CrawlDataset,
    p: &Partition,
    pairs: &[Pair],
    sizes: &[usize],
) -> CrawlEstimates {
    let g = &sim.graph;
    let population = g.num_nodes() as f64;
    let num_c = p.num_categories();
    let uniform = matches!(ds.crawl, CrawlType::Uis | CrawlType::Mhrw);
    let sampler = sim.sampler_for(ds.crawl);
    let opts = StarSizeOptions::default();
    let mut out = CrawlEstimates {
        sizes_ind: vec![Vec::new(); sizes.len()],
        sizes_star: vec![Vec::new(); sizes.len()],
        weights_ind: vec![Vec::new(); sizes.len()],
        weights_star: vec![Vec::new(); sizes.len()],
    };
    for walk in ds.walks.walks() {
        for (si, &s) in sizes.iter().enumerate() {
            let prefix = &walk[..s.min(walk.len())];
            let star = if uniform {
                StarSample::observe(g, p, prefix)
            } else {
                StarSample::observe_sampler(g, p, prefix, &sampler)
            };
            let ind = star.to_induced(g, p);
            let s_ind = induced_sizes(&ind, population).unwrap_or_else(|| vec![0.0; num_c]);
            let s_star_opt = star_sizes(&star, population, &opts);
            let plug: Vec<f64> = s_star_opt
                .iter()
                .zip(&s_ind)
                .map(|(st, &i)| st.unwrap_or(i))
                .collect();
            let s_star: Vec<f64> = s_star_opt.into_iter().map(|x| x.unwrap_or(0.0)).collect();
            let w_ind = induced_weights_all(&ind);
            let w_star = star_weights_all(&star, &plug);
            out.sizes_ind[si].push(s_ind);
            out.sizes_star[si].push(s_star);
            out.weights_ind[si].push(pairs.iter().map(|&(a, b)| w_ind.get(a, b)).collect());
            out.weights_star[si].push(pairs.iter().map(|&(a, b)| w_star.get(a, b)).collect());
        }
    }
    out
}

/// Median-across-targets NRMSE for one estimate tensor at one |S| index.
///
/// `truth[t]` per target; `paper_style` replaces it with the all-walk mean
/// at the largest |S| (the paper's §7.2 protocol for unknown ground truth).
fn median_nrmse(
    per_size: &[Vec<Vec<f64>>],
    si: usize,
    targets: &[usize],
    truth: &[f64],
    paper_style: bool,
) -> f64 {
    let last = per_size.len() - 1;
    let vals: Vec<f64> = targets
        .iter()
        .filter_map(|&t| {
            let tr = if paper_style {
                let walks = &per_size[last];
                walks.iter().map(|w| w[t]).sum::<f64>() / walks.len() as f64
            } else {
                truth[t]
            };
            if tr == 0.0 || !tr.is_finite() {
                return None;
            }
            let ests: Vec<f64> = per_size[si].iter().map(|w| w[t]).collect();
            let mse = ests.iter().map(|e| (e - tr).powi(2)).sum::<f64>() / ests.len() as f64;
            Some(mse.sqrt() / tr.abs())
        })
        .filter(|x| x.is_finite())
        .collect();
    median(&vals).unwrap_or(f64::NAN)
}

#[allow(clippy::too_many_arguments)]
fn emit_panel(
    args: &RunArgs,
    name: &str,
    heading: &str,
    crawls: &[(&str, &CrawlEstimates)],
    sizes: &[usize],
    kind: fn(&CrawlEstimates) -> (&EstimateTensor, &EstimateTensor),
    targets: &[usize],
    truth: &[f64],
) {
    for (suffix, paper_style) in [("true", false), ("paper", true)] {
        let mut headers = vec!["|S|".to_string()];
        for (n, _) in crawls {
            headers.push(format!("{n}/induced"));
            headers.push(format!("{n}/star"));
        }
        let mut t = Table::new(headers);
        for (si, &s) in sizes.iter().enumerate() {
            let mut row = vec![s.to_string()];
            for (_, est) in crawls {
                let (ind, star) = kind(est);
                row.push(fmt_nrmse(median_nrmse(
                    ind,
                    si,
                    targets,
                    truth,
                    paper_style,
                )));
                row.push(fmt_nrmse(median_nrmse(
                    star,
                    si,
                    targets,
                    truth,
                    paper_style,
                )));
            }
            t.row(row);
        }
        let truth_label = if paper_style {
            "vs all-walk mean (paper protocol)"
        } else {
            "vs simulator ground truth"
        };
        args.emit(
            &format!("{name}_{suffix}"),
            &format!("{heading} — {truth_label}"),
            &t,
        );
    }
}

fn main() {
    let args = RunArgs::parse();
    let mut cfg = match args.scale {
        cgte_bench::Scale::Quick => FacebookSimConfig::quick(),
        cgte_bench::Scale::Default => FacebookSimConfig::default(),
        cgte_bench::Scale::Full => FacebookSimConfig {
            num_users: 1_000_000,
            num_colleges: 10_000,
            ..Default::default()
        },
    };
    cfg.num_regions = args.pick(40, 507, 507);
    let num_walks_09 = args.pick(8, 28, 28);
    let num_walks_10 = args.pick(8, 25, 25);
    let per_walk = args.pick(600, 5_000, 81_000);
    let per_walk_10 = args.pick(600, 5_000, 40_000);
    let top = args.pick(10, 100, 100);
    let sizes09 = log_sizes(per_walk / 10, per_walk, 4);
    let sizes10 = log_sizes(per_walk_10 / 10, per_walk_10, 4);

    eprintln!("fig6: simulating population ({} users)...", cfg.num_users);
    let mut rng = StdRng::seed_from_u64(args.seed);
    let sim = FacebookSim::generate(&cfg, &mut rng);
    eprintln!("fig6: running crawls...");
    let c09 = sim.crawl_2009(num_walks_09, per_walk, &mut rng);
    let c10 = sim.crawl_2010(num_walks_10, per_walk_10, &mut rng);

    // 2009: top regions by true size; weight pairs among the top 15.
    let true_regions = CategoryGraph::exact(&sim.graph, &sim.regions);
    let n_regions = sim.config().num_regions;
    let top_regions: Vec<usize> = (0..top.min(n_regions)).collect(); // sizes are Zipf-ranked
    let mut pairs09: Vec<Pair> = Vec::new();
    for a in 0..15.min(n_regions) as u32 {
        for b in (a + 1)..15.min(n_regions) as u32 {
            if true_regions.weight(a, b) > 0.0 {
                pairs09.push((a, b));
            }
        }
    }
    let truth_sizes09: Vec<f64> = (0..sim.regions.num_categories())
        .map(|c| sim.regions.category_size(c as u32) as f64)
        .collect();
    let truth_pairs09: Vec<f64> = pairs09
        .iter()
        .map(|&(a, b)| true_regions.weight(a, b))
        .collect();

    eprintln!(
        "fig6: evaluating 2009 crawls ({} walks x {} sizes)...",
        num_walks_09,
        sizes09.len()
    );
    let est09: Vec<(&str, CrawlEstimates)> = c09
        .iter()
        .map(|ds| {
            (
                ds.name.as_str(),
                evaluate_crawl(&sim, ds, &sim.regions, &pairs09, &sizes09),
            )
        })
        .collect();
    let crawls09: Vec<(&str, &CrawlEstimates)> = est09.iter().map(|(n, e)| (*n, e)).collect();

    emit_panel(
        &args,
        "fig6a",
        &format!("Fig. 6(a): 2009 — median NRMSE(|Â|) over top {top} regions"),
        &crawls09,
        &sizes09,
        |e| (&e.sizes_ind, &e.sizes_star),
        &top_regions,
        &truth_sizes09,
    );
    let pair_idx09: Vec<usize> = (0..pairs09.len()).collect();
    emit_panel(
        &args,
        "fig6c",
        &format!(
            "Fig. 6(c): 2009 — median NRMSE(ŵ) over {} region pairs",
            pairs09.len()
        ),
        &crawls09,
        &sizes09,
        |e| (&e.weights_ind, &e.weights_star),
        &pair_idx09,
        &truth_pairs09,
    );

    // 2010: colleges.
    let true_colleges = CategoryGraph::exact(&sim.graph, &sim.colleges);
    let n_colleges = sim.config().num_colleges;
    let top_colleges: Vec<usize> = (0..top.min(n_colleges)).collect();
    let mut pairs10: Vec<Pair> = Vec::new();
    for a in 0..12.min(n_colleges) as u32 {
        for b in (a + 1)..12.min(n_colleges) as u32 {
            if true_colleges.weight(a, b) > 0.0 {
                pairs10.push((a, b));
            }
        }
    }
    let truth_sizes10: Vec<f64> = (0..sim.colleges.num_categories())
        .map(|c| sim.colleges.category_size(c as u32) as f64)
        .collect();
    let truth_pairs10: Vec<f64> = pairs10
        .iter()
        .map(|&(a, b)| true_colleges.weight(a, b))
        .collect();

    eprintln!("fig6: evaluating 2010 crawls...");
    let est10: Vec<(&str, CrawlEstimates)> = c10
        .iter()
        .map(|ds| {
            (
                ds.name.as_str(),
                evaluate_crawl(&sim, ds, &sim.colleges, &pairs10, &sizes10),
            )
        })
        .collect();
    let crawls10: Vec<(&str, &CrawlEstimates)> = est10.iter().map(|(n, e)| (*n, e)).collect();

    emit_panel(
        &args,
        "fig6b",
        &format!("Fig. 6(b): 2010 — median NRMSE(|Â|) over top {top} colleges"),
        &crawls10,
        &sizes10,
        |e| (&e.sizes_ind, &e.sizes_star),
        &top_colleges,
        &truth_sizes10,
    );
    let pair_idx10: Vec<usize> = (0..pairs10.len()).collect();
    emit_panel(
        &args,
        "fig6d",
        &format!(
            "Fig. 6(d): 2010 — median NRMSE(ŵ) over {} college pairs",
            pairs10.len()
        ),
        &crawls10,
        &sizes10,
        |e| (&e.weights_ind, &e.weights_star),
        &pair_idx10,
        &truth_pairs10,
    );

    println!("\nExpected ordering (paper §7.2): UIS < S-WRW < RW < MHRW; star ≪ induced");
    println!("for edge weights; star sizes win under RW/S-WRW, induced can win under UIS.");
}
