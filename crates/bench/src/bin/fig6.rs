//! Fig. 6: estimator performance on the Facebook crawls — thin shim over the embedded
//! `fig6` scenario; the tables and expected shapes are documented in
//! EXPERIMENTS.md and in `crates/cgte-scenarios/scenarios/fig6.scn`.

fn main() {
    cgte_bench::run_builtin_main("fig6");
}
