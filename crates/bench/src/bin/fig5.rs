//! Fig. 5: number of samples per category in the Facebook crawls — thin shim over the embedded
//! `fig5` scenario; the tables and expected shapes are documented in
//! EXPERIMENTS.md and in `crates/cgte-scenarios/scenarios/fig5.scn`.

fn main() {
    cgte_bench::run_builtin_main("fig5");
}
