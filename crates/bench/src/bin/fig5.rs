//! Reproduces Fig. 5: number of samples per category in the Facebook
//! crawls (2009 regions, top; 2010 colleges, bottom), categories sorted by
//! descending sample count.
//!
//! Expected shape: the 2009 curves decay smoothly over the 507 regions and
//! track each other across crawl types; in 2010, RW10 collects 0–10 samples
//! for most colleges while S-WRW10 lifts the whole curve by an order of
//! magnitude or more (the paper's headline for stratified crawling).

use cgte_bench::RunArgs;
use cgte_datasets::{FacebookSim, FacebookSimConfig};
use cgte_eval::Table;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Rank positions reported in the printed table (full curves go to CSV).
fn ranks(n: usize) -> Vec<usize> {
    [1usize, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 5000]
        .into_iter()
        .filter(|&r| r <= n)
        .collect()
}

fn main() {
    let args = RunArgs::parse();
    let mut cfg = match args.scale {
        cgte_bench::Scale::Quick => FacebookSimConfig::quick(),
        cgte_bench::Scale::Default => FacebookSimConfig::default(),
        cgte_bench::Scale::Full => FacebookSimConfig {
            num_users: 1_000_000,
            num_colleges: 10_000,
            ..Default::default()
        },
    };
    cfg.num_regions = args.pick(40, 507, 507);
    let per_walk = args.pick(500, 5_000, 81_000);
    let per_walk_10 = args.pick(500, 5_000, 40_000);

    eprintln!("fig5: simulating population ({} users)...", cfg.num_users);
    let mut rng = StdRng::seed_from_u64(args.seed);
    let sim = FacebookSim::generate(&cfg, &mut rng);
    eprintln!("fig5: running crawls...");
    let c09 = sim.crawl_2009(28, per_walk, &mut rng);
    let c10 = sim.crawl_2010(25, per_walk_10, &mut rng);

    // 2009 panel: samples per region (declared regions only), sorted desc.
    let n_regions = sim.config().num_regions;
    {
        let mut per_crawl: Vec<(String, Vec<usize>)> = Vec::new();
        for ds in &c09 {
            let mut counts = ds.samples_per_category(&sim.regions);
            counts.truncate(n_regions); // drop the undeclared pseudo-category
            counts.sort_unstable_by(|a, b| b.cmp(a));
            per_crawl.push((ds.name.clone(), counts));
        }
        let mut headers = vec!["region rank".to_string()];
        headers.extend(per_crawl.iter().map(|(n, _)| n.clone()));
        let mut t = Table::new(headers);
        for r in ranks(n_regions) {
            let mut row = vec![r.to_string()];
            for (_, counts) in &per_crawl {
                row.push(counts[r - 1].to_string());
            }
            t.row(row);
        }
        args.emit(
            "fig5_2009",
            "Fig. 5 (top): #samples per regional category, 2009 crawls",
            &t,
        );
    }

    // 2010 panel: samples per college.
    let n_colleges = sim.config().num_colleges;
    {
        let mut per_crawl: Vec<(String, Vec<usize>)> = Vec::new();
        for ds in &c10 {
            let mut counts = ds.samples_per_category(&sim.colleges);
            counts.truncate(n_colleges);
            counts.sort_unstable_by(|a, b| b.cmp(a));
            per_crawl.push((ds.name.clone(), counts));
        }
        let mut headers = vec!["college rank".to_string()];
        headers.extend(per_crawl.iter().map(|(n, _)| n.clone()));
        let mut t = Table::new(headers);
        for r in ranks(n_colleges) {
            let mut row = vec![r.to_string()];
            for (_, counts) in &per_crawl {
                row.push(counts[r - 1].to_string());
            }
            t.row(row);
        }
        // Median college coverage, the paper's "0-10 samples" observation.
        let mut row = vec!["median".to_string()];
        for (_, counts) in &per_crawl {
            row.push(counts[counts.len() / 2].to_string());
        }
        t.row(row);
        args.emit(
            "fig5_2010",
            "Fig. 5 (bottom): #samples per college, 2010 crawls",
            &t,
        );
    }
    println!("\nExpected: S-WRW10 exceeds RW10 by ≥ an order of magnitude at every rank");
    println!("(the paper reports \"at least one order of magnitude\" improvement).");
}
