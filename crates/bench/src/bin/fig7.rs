//! Fig. 7: the estimated category graphs of §7.3 — thin shim over the embedded
//! `fig7` scenario; the tables and expected shapes are documented in
//! EXPERIMENTS.md and in `crates/cgte-scenarios/scenarios/fig7.scn`.

fn main() {
    cgte_bench::run_builtin_main("fig7");
}
