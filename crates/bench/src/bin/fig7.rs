//! Reproduces Fig. 7: the estimated category graphs of §7.3, as
//! machine-readable exports and "strongest links" reports (the textual
//! analogue of the geosocialmap visualizations; DESIGN.md substitution 3).
//!
//! (a) country-to-country friendship graph: regions merged into countries;
//!     sizes via UIS induced estimation (the paper's choice, §7.3.1), edge
//!     weights via the star estimators, averaged across the three 2009
//!     crawl types (UIS, MHRW, RW);
//! (b) region-level graph of the largest country — the North-America
//!     analogue (§7.3.2);
//! (c) college-to-college graph from the S-WRW 2010 crawls with star size
//!     estimation (§7.3.3).
//!
//! With `--csv DIR`, also writes DOT/JSON/GraphML files next to the CSVs.

use cgte_bench::RunArgs;
use cgte_core::{CategoryGraphEstimator, Design, SizeMethod, StarSizeOptions};
use cgte_datasets::{CrawlDataset, CrawlType, FacebookSim, FacebookSimConfig};
use cgte_graph::{CategoryGraph, CategoryId, CategoryMatrix, Partition};
use cgte_sampling::StarSample;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Averages several estimated category graphs edge-wise and size-wise
/// (§7.3.1: "for every edge, we take the average of the three estimates").
fn average_graphs(graphs: &[CategoryGraph]) -> CategoryGraph {
    assert!(!graphs.is_empty());
    let num_c = graphs[0].num_categories();
    let mut sizes = vec![0.0; num_c];
    for g in graphs {
        for (c, size) in sizes.iter_mut().enumerate() {
            *size += g.size(c as CategoryId) / graphs.len() as f64;
        }
    }
    let mut weights = CategoryMatrix::zeros(num_c);
    for g in graphs {
        for e in g.edges() {
            weights.add(e.a, e.b, e.weight / graphs.len() as f64);
        }
    }
    CategoryGraph::from_weights(sizes, weights)
}

/// Estimates one category graph from every walk of a crawl combined.
fn estimate_from_crawl(
    sim: &FacebookSim,
    ds: &CrawlDataset,
    p: &Partition,
    size_method: SizeMethod,
) -> CategoryGraph {
    let nodes = ds.walks.combined();
    let uniform = matches!(ds.crawl, CrawlType::Uis | CrawlType::Mhrw);
    let star = if uniform {
        StarSample::observe(&sim.graph, p, &nodes)
    } else {
        StarSample::observe_sampler(&sim.graph, p, &nodes, &sim.sampler_for(ds.crawl))
    };
    CategoryGraphEstimator::new(if uniform {
        Design::Uniform
    } else {
        Design::Weighted
    })
    .size_method(size_method)
    .estimate_star(&star, sim.graph.num_nodes() as f64)
}

fn export(args: &RunArgs, name: &str, heading: &str, cg: &CategoryGraph, labels: Vec<String>) {
    let opts = cgte_viz::ExportOptions {
        labels,
        top_k: 200,
        ..Default::default()
    };
    println!("\n## {heading}\n");
    print!("{}", cgte_viz::top_edges_report(cg, &opts, 15));
    if let Some(dir) = &args.csv_dir {
        let _ = std::fs::create_dir_all(dir);
        for (ext, content) in [
            ("dot", cgte_viz::to_dot(cg, &opts)),
            ("json", cgte_viz::to_json(cg, &opts)),
            ("graphml", cgte_viz::to_graphml(cg, &opts)),
            ("csv", cgte_viz::to_csv_edges(cg, &opts)),
        ] {
            let path = dir.join(format!("{name}.{ext}"));
            match std::fs::write(&path, content) {
                Ok(()) => eprintln!("saved {path:?}"),
                Err(e) => eprintln!("cannot save {path:?}: {e}"),
            }
        }
    }
}

fn main() {
    let args = RunArgs::parse();
    let mut cfg = match args.scale {
        cgte_bench::Scale::Quick => FacebookSimConfig::quick(),
        cgte_bench::Scale::Default => FacebookSimConfig::default(),
        cgte_bench::Scale::Full => FacebookSimConfig {
            num_users: 1_000_000,
            num_colleges: 10_000,
            ..Default::default()
        },
    };
    cfg.num_regions = args.pick(40, 507, 507);
    let per_walk = args.pick(500, 5_000, 81_000);
    let per_walk_10 = args.pick(500, 5_000, 40_000);

    eprintln!("fig7: simulating population ({} users)...", cfg.num_users);
    let mut rng = StdRng::seed_from_u64(args.seed);
    let sim = FacebookSim::generate(&cfg, &mut rng);
    eprintln!("fig7: running crawls...");
    let c09 = sim.crawl_2009(args.pick(6, 28, 28), per_walk, &mut rng);
    let c10 = sim.crawl_2010(args.pick(6, 25, 25), per_walk_10, &mut rng);

    // (a) Country-to-country graph: average of the three 2009 estimates,
    // induced (UIS-style) sizes as in §7.3.1.
    let countries = sim.countries();
    let nc = sim.config().num_countries;
    let estimates: Vec<CategoryGraph> = c09
        .iter()
        .map(|ds| estimate_from_crawl(&sim, ds, &countries, SizeMethod::Induced))
        .collect();
    let avg = average_graphs(&estimates);
    let mut labels: Vec<String> = (0..nc).map(|c| format!("country-{c:02}")).collect();
    labels.push("undeclared".into());
    export(
        &args,
        "fig7a_countries",
        "Fig. 7(a): country-to-country friendship graph (avg of UIS/MHRW/RW estimates)",
        &avg,
        labels,
    );
    // Sanity line: compare against the exact country graph.
    let exact = CategoryGraph::exact(&sim.graph, &countries);
    let top_est: Vec<_> = avg
        .edges_by_weight()
        .into_iter()
        .take(10)
        .map(|e| (e.a, e.b))
        .collect();
    let top_true: Vec<_> = exact
        .edges_by_weight()
        .into_iter()
        .take(10)
        .map(|e| (e.a, e.b))
        .collect();
    let overlap = top_est.iter().filter(|p| top_true.contains(p)).count();
    println!("\nsanity: {overlap}/10 of the estimated top-10 country links are in the true top-10");

    // (b) Region-level graph of the regions belonging to the largest
    // country (North-America analogue): restrict attention to those
    // regions by merging everything else into one "elsewhere" category.
    let n_regions = sim.config().num_regions;
    let big_country: CategoryId = 0;
    let mut map: Vec<CategoryId> = Vec::with_capacity(n_regions + 1);
    let mut kept = 0u32;
    for r in 0..n_regions {
        if sim.region_to_country[r] == big_country {
            map.push(kept);
            kept += 1;
        } else {
            map.push(u32::MAX); // placeholder, fixed below
        }
    }
    map.push(u32::MAX);
    let elsewhere = kept;
    for m in map.iter_mut() {
        if *m == u32::MAX {
            *m = elsewhere;
        }
    }
    let na_partition = sim
        .regions
        .merge(&map, (kept + 1) as usize)
        .expect("valid merge map");
    let estimates: Vec<CategoryGraph> = c09
        .iter()
        .map(|ds| estimate_from_crawl(&sim, ds, &na_partition, SizeMethod::Induced))
        .collect();
    let avg = average_graphs(&estimates);
    let mut labels: Vec<String> = (0..kept).map(|r| format!("region-{r:02}")).collect();
    labels.push("elsewhere".into());
    export(
        &args,
        "fig7b_regions",
        &format!(
            "Fig. 7(b): intra-country region graph ({kept} regions of country-00 + elsewhere)"
        ),
        &avg,
        labels,
    );

    // (c) College-to-college graph from S-WRW10 with star sizes (§7.3.3).
    let swrw10 = c10
        .iter()
        .find(|d| d.crawl == CrawlType::Swrw)
        .expect("S-WRW dataset");
    let cg = estimate_from_crawl(
        &sim,
        swrw10,
        &sim.colleges,
        SizeMethod::Star(StarSizeOptions::default()),
    );
    let ncol = sim.config().num_colleges;
    let mut labels: Vec<String> = (0..ncol).map(|c| format!("college-{c:03}")).collect();
    labels.push("no-college".into());
    export(
        &args,
        "fig7c_colleges",
        "Fig. 7(c): college-to-college friendship graph (S-WRW10, star sizes)",
        &cg,
        labels,
    );

    println!("\nfig7 done. The exported graphs are the §7.3 deliverables; the paper's");
    println!("visual claims (distance effects) live in the edge-weight orderings above.");
}
