//! P1: sampler throughput — nodes drawn per second for all five designs.

use cgte_graph::generators::{planted_partition, PlantedConfig};
use cgte_sampling::{
    MetropolisHastingsWalk, NodeSampler, RandomWalk, Swrw, UniformIndependence,
    WeightedIndependence,
};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_samplers(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let pg =
        planted_partition(&PlantedConfig::scaled(10, 20, 0.5), &mut rng).expect("feasible config");
    let g = &pg.graph;
    let n = 10_000;

    let mut grp = c.benchmark_group("samplers_10k_draws");
    grp.sample_size(20);
    grp.bench_function("uis", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| black_box(UniformIndependence.sample(g, n, &mut rng)))
    });
    let wis = WeightedIndependence::degree_proportional(g).unwrap();
    grp.bench_function("wis_degree", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| black_box(wis.sample(g, n, &mut rng)))
    });
    let rw = RandomWalk::new();
    grp.bench_function("rw", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| black_box(rw.sample(g, n, &mut rng)))
    });
    let mhrw = MetropolisHastingsWalk::new();
    grp.bench_function("mhrw", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| black_box(mhrw.sample(g, n, &mut rng)))
    });
    let swrw = Swrw::equal_category_target(g, &pg.partition).unwrap();
    grp.bench_function("swrw", |b| {
        let mut rng = StdRng::seed_from_u64(6);
        b.iter(|| black_box(swrw.sample(g, n, &mut rng)))
    });
    grp.finish();
}

criterion_group!(benches, bench_samplers);
criterion_main!(benches);
