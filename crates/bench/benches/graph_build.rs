//! P1: graph construction and exact category-graph computation.

use cgte_graph::generators::gnm;
use cgte_graph::{CategoryGraph, GraphBuilder, Partition};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("graph");
    g.sample_size(20);
    for (n, m) in [(10_000usize, 50_000usize), (50_000, 500_000)] {
        let mut rng = StdRng::seed_from_u64(1);
        let graph = gnm(n, m, &mut rng).unwrap();
        let edges: Vec<_> = graph.edges().collect();
        g.bench_with_input(
            BenchmarkId::new("csr_build", format!("{n}n_{m}e")),
            &edges,
            |b, e| {
                b.iter(|| {
                    let mut bld = GraphBuilder::with_capacity(n, e.len());
                    for &(u, v) in e.iter() {
                        bld.add_edge(u, v).unwrap();
                    }
                    black_box(bld.build())
                })
            },
        );
        let p = Partition::from_assignments((0..n).map(|v| (v % 50) as u32).collect(), 50).unwrap();
        g.bench_with_input(
            BenchmarkId::new("category_graph_exact", format!("{n}n_{m}e")),
            &(&graph, &p),
            |b, (graph, p)| b.iter(|| black_box(CategoryGraph::exact(graph, p))),
        );
        g.bench_with_input(
            BenchmarkId::new("has_edge", format!("{n}n_{m}e")),
            &graph,
            |b, graph| {
                let mut i = 0u32;
                b.iter(|| {
                    i = (i + 7919) % n as u32;
                    black_box(graph.has_edge(i, (i * 31) % n as u32))
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
