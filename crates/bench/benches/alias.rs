//! P1: Walker alias table — construction and sampling throughput.

use cgte_sampling::AliasTable;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_alias(c: &mut Criterion) {
    let mut g = c.benchmark_group("alias");
    for n in [1_000usize, 100_000] {
        let mut rng = StdRng::seed_from_u64(1);
        let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1..10.0)).collect();
        g.bench_with_input(BenchmarkId::new("build", n), &weights, |b, w| {
            b.iter(|| AliasTable::new(black_box(w)).unwrap())
        });
        let table = AliasTable::new(&weights).unwrap();
        g.bench_with_input(BenchmarkId::new("sample", n), &table, |b, t| {
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| black_box(t.sample(&mut rng)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_alias);
criterion_main!(benches);
