//! P1: observation and estimator throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use cgte_core::category_size::{induced_sizes, star_sizes, StarSizeOptions};
use cgte_core::edge_weight::{induced_weights_all, star_weights_all};
use cgte_graph::generators::{planted_partition, PlantedConfig};
use cgte_sampling::{InducedSample, NodeSampler, StarSample, UniformIndependence};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_estimators(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let pg = planted_partition(&PlantedConfig::scaled(10, 20, 0.5), &mut rng)
        .expect("feasible config");
    let (g, p) = (&pg.graph, &pg.partition);
    let nodes = UniformIndependence.sample(g, 5_000, &mut rng);
    let population = g.num_nodes() as f64;

    let mut grp = c.benchmark_group("estimators_5k_sample");
    grp.sample_size(20);
    grp.bench_function("observe_induced", |b| {
        b.iter(|| black_box(InducedSample::observe(g, p, &nodes)))
    });
    grp.bench_function("observe_star", |b| {
        b.iter(|| black_box(StarSample::observe(g, p, &nodes)))
    });

    let ind = InducedSample::observe(g, p, &nodes);
    let star = StarSample::observe(g, p, &nodes);
    grp.bench_function("induced_sizes", |b| {
        b.iter(|| black_box(induced_sizes(&ind, population)))
    });
    grp.bench_function("star_sizes", |b| {
        b.iter(|| black_box(star_sizes(&star, population, &StarSizeOptions::default())))
    });
    grp.bench_function("induced_weights_all", |b| {
        b.iter(|| black_box(induced_weights_all(&ind)))
    });
    let sizes: Vec<f64> = p.sizes().iter().map(|&s| s as f64).collect();
    grp.bench_function("star_weights_all", |b| {
        b.iter(|| black_box(star_weights_all(&star, &sizes)))
    });
    grp.finish();
}

criterion_group!(benches, bench_estimators);
criterion_main!(benches);
