//! P1: observation and estimator throughput.

use cgte_core::category_size::{induced_sizes, star_sizes, StarSizeOptions};
use cgte_core::edge_weight::{induced_weights_all, star_weights_all};
use cgte_graph::generators::{planted_partition, PlantedConfig};
use cgte_sampling::{InducedSample, NodeSampler, StarSample, UniformIndependence};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_estimators(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let pg =
        planted_partition(&PlantedConfig::scaled(10, 20, 0.5), &mut rng).expect("feasible config");
    let (g, p) = (&pg.graph, &pg.partition);
    let nodes = UniformIndependence.sample(g, 5_000, &mut rng);
    let population = g.num_nodes() as f64;

    let mut grp = c.benchmark_group("estimators_5k_sample");
    grp.sample_size(20);
    grp.bench_function("observe_induced", |b| {
        b.iter(|| black_box(InducedSample::observe(g, p, &nodes)))
    });
    grp.bench_function("observe_star", |b| {
        b.iter(|| black_box(StarSample::observe(g, p, &nodes)))
    });

    let ind = InducedSample::observe(g, p, &nodes);
    let star = StarSample::observe(g, p, &nodes);
    grp.bench_function("induced_sizes", |b| {
        b.iter(|| black_box(induced_sizes(&ind, population)))
    });
    grp.bench_function("star_sizes", |b| {
        b.iter(|| black_box(star_sizes(&star, population, &StarSizeOptions::default())))
    });
    grp.bench_function("induced_weights_all", |b| {
        b.iter(|| black_box(induced_weights_all(&ind)))
    });
    let sizes: Vec<f64> = p.sizes().iter().map(|&s| s as f64).collect();
    grp.bench_function("star_weights_all", |b| {
        b.iter(|| black_box(star_weights_all(&star, &sizes)))
    });
    grp.finish();
}

/// Growing-prefix evaluation (the §6.1 NRMSE protocol's inner loop): the
/// old path re-observes every prefix from scratch; the incremental path
/// folds the sequence into accumulators once and snapshots per size.
fn bench_prefix_evaluation(c: &mut Criterion) {
    use cgte_core::category_size::{induced_sizes_acc, star_sizes_acc};
    use cgte_core::edge_weight::{induced_weights_acc, star_weights_acc};
    use cgte_graph::generators::{chung_lu, powerlaw_weights, scale_to_mean};
    use cgte_graph::Partition;
    use cgte_sampling::{InducedAccumulator, ObservationContext, RandomWalk, StarAccumulator};

    // A 100k-node Chung-Lu graph with power-law degrees (mean ~10) and ten
    // equal categories — the fig3/fig4 synthetic workload shape.
    let mut rng = StdRng::seed_from_u64(7);
    let n = 100_000;
    let mut w = powerlaw_weights(n, 2.5, 1.0, (n as f64).sqrt(), &mut rng);
    scale_to_mean(&mut w, 10.0);
    let g = chung_lu(&w, &mut rng);
    let p = Partition::blocks(n, &[n / 10; 10]).expect("exact blocks");
    let sizes = [100usize, 200, 500, 1000, 2000];
    let max_size = *sizes.iter().max().unwrap();
    let walk = RandomWalk::new().burn_in(1_000);
    let nodes = walk.sample(&g, max_size, &mut rng);
    let weights: Vec<f64> = nodes.iter().map(|&v| g.degree(v) as f64).collect();
    let num_c = p.num_categories();
    let population = g.num_nodes() as f64;
    let opts = StarSizeOptions::default();

    let mut grp = c.benchmark_group("prefix_eval_100k_chung_lu");
    grp.sample_size(10);
    grp.bench_function("reobserve_per_prefix", |b| {
        b.iter(|| {
            for &s in &sizes {
                let star =
                    StarSample::observe_with_weights(&g, &p, &nodes[..s], weights[..s].to_vec());
                let ind = star.to_induced(&g, &p);
                let ind_sizes = cgte_core::category_size::induced_sizes(&ind, population)
                    .unwrap_or_else(|| vec![0.0; num_c]);
                let star_sz = cgte_core::category_size::star_sizes(&star, population, &opts);
                let plug: Vec<f64> = star_sz
                    .iter()
                    .zip(&ind_sizes)
                    .map(|(st, &i)| st.unwrap_or(i))
                    .collect();
                black_box(induced_weights_all(&ind));
                black_box(star_weights_all(&star, &plug));
            }
        })
    });

    // The context is built once per experiment and amortized over hundreds
    // of replications, so it stays outside the measured loop (like the
    // graph itself).
    let ctx = ObservationContext::new(&g, &p);
    grp.bench_function("incremental_accumulators", |b| {
        let mut star_acc = StarAccumulator::new(num_c);
        let mut ind_acc = InducedAccumulator::new(num_c);
        b.iter(|| {
            star_acc.reset();
            ind_acc.reset();
            let mut next = 0;
            for (pos, (&v, &w)) in nodes.iter().zip(&weights).enumerate() {
                star_acc.push(&ctx, v, w);
                ind_acc.push(&ctx, v, w);
                if next < sizes.len() && sizes[next] == pos + 1 {
                    let ind_sizes =
                        induced_sizes_acc(&ind_acc, population).unwrap_or_else(|| vec![0.0; num_c]);
                    let star_sz = star_sizes_acc(&star_acc, population, &opts);
                    let plug: Vec<f64> = star_sz
                        .iter()
                        .zip(&ind_sizes)
                        .map(|(st, &i)| st.unwrap_or(i))
                        .collect();
                    black_box(induced_weights_acc(&ind_acc));
                    black_box(star_weights_acc(&star_acc, &plug));
                    next += 1;
                }
            }
        })
    });
    grp.finish();
}

criterion_group!(benches, bench_estimators, bench_prefix_evaluation);
criterion_main!(benches);
