//! Golden-output tests: the scenario-engine refactor must leave every
//! figure binary's stdout byte-identical to the pre-refactor output
//! (same seeds → same series → same tables).
//!
//! The golden files under `tests/golden/` were captured from the original
//! hand-coded binaries. The engine runs every NRMSE job single-threaded
//! internally (jobs are the parallelism unit), so the comparison holds on
//! any machine and any `--threads` setting.

use std::process::Command;

fn run_binary(exe: &str, args: &[&str]) -> String {
    let out = Command::new(exe)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("cannot run {exe}: {e}"));
    assert!(
        out.status.success(),
        "{exe} {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("stdout is UTF-8")
}

fn assert_golden(exe: &str, args: &[&str], golden: &str) {
    let actual = run_binary(exe, args);
    if actual != golden {
        // Find the first differing line for a readable failure.
        for (i, (a, g)) in actual.lines().zip(golden.lines()).enumerate() {
            assert_eq!(
                a,
                g,
                "first difference at line {} (run `{exe} {args:?}` to reproduce)",
                i + 1
            );
        }
        assert_eq!(
            actual.lines().count(),
            golden.lines().count(),
            "line count differs for {exe} {args:?}"
        );
        panic!("output differs from golden for {exe} {args:?}");
    }
}

macro_rules! golden_quick {
    ($name:ident, $env:literal, $file:literal) => {
        #[test]
        fn $name() {
            assert_golden(env!($env), &["--quick"], include_str!($file));
        }
    };
}

golden_quick!(fig3_quick, "CARGO_BIN_EXE_fig3", "golden/fig3_quick.txt");
golden_quick!(fig4_quick, "CARGO_BIN_EXE_fig4", "golden/fig4_quick.txt");
golden_quick!(fig5_quick, "CARGO_BIN_EXE_fig5", "golden/fig5_quick.txt");
golden_quick!(fig6_quick, "CARGO_BIN_EXE_fig6", "golden/fig6_quick.txt");
golden_quick!(fig7_quick, "CARGO_BIN_EXE_fig7", "golden/fig7_quick.txt");
golden_quick!(
    table1_quick,
    "CARGO_BIN_EXE_table1",
    "golden/table1_quick.txt"
);
golden_quick!(
    table2_quick,
    "CARGO_BIN_EXE_table2",
    "golden/table2_quick.txt"
);
golden_quick!(
    ablation_model_based_quick,
    "CARGO_BIN_EXE_ablation_model_based",
    "golden/ablation_model_based_quick.txt"
);
golden_quick!(
    ablation_swrw_quick,
    "CARGO_BIN_EXE_ablation_swrw",
    "golden/ablation_swrw_quick.txt"
);
golden_quick!(
    ablation_thinning_quick,
    "CARGO_BIN_EXE_ablation_thinning",
    "golden/ablation_thinning_quick.txt"
);

/// The acceptance bar: default-scale byte-identity for table1.
#[test]
fn table1_default_scale() {
    assert_golden(
        env!("CARGO_BIN_EXE_table1"),
        &[],
        include_str!("golden/table1_default.txt"),
    );
}

/// The acceptance bar: default-scale byte-identity for fig3. The default
/// scale runs 40 replications over five planted graphs; this is the
/// slowest tier-1 test (seconds in release, tens of seconds unoptimized).
#[test]
fn fig3_default_scale() {
    assert_golden(
        env!("CARGO_BIN_EXE_fig3"),
        &[],
        include_str!("golden/fig3_default.txt"),
    );
}

/// `--threads` must not change results: jobs are the unit of parallelism
/// and each NRMSE job runs single-threaded internally.
#[test]
fn thread_count_does_not_change_output() {
    let exe = env!("CARGO_BIN_EXE_ablation_thinning");
    let one = run_binary(exe, &["--quick", "--threads", "1"]);
    let four = run_binary(exe, &["--quick", "--threads", "4"]);
    assert_eq!(one, four);
    assert_eq!(one, include_str!("golden/ablation_thinning_quick.txt"));
}

/// `--resume` against a completed run directory re-executes nothing and
/// still reproduces the full golden output.
#[test]
fn resume_reproduces_golden_output() {
    let exe = env!("CARGO_BIN_EXE_table2");
    let dir = std::env::temp_dir().join(format!("cgte-golden-resume-{}", std::process::id()));
    let dir_s = dir.to_str().expect("temp dir is UTF-8");
    let first = run_binary(exe, &["--quick", "--out", dir_s]);
    let resumed = run_binary(exe, &["--quick", "--out", dir_s, "--resume"]);
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(first, resumed);
    assert_eq!(first, include_str!("golden/table2_quick.txt"));
}
