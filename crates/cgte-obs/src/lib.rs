//! Zero-dependency observability core for the cgte workspace.
//!
//! Two pillars, both built for the workspace's determinism and
//! no-new-dependencies constraints:
//!
//! - [`trace`]: level-gated structured tracing. One relaxed atomic load
//!   when off; JSONL span/event records through a pluggable sink when
//!   on ([`trace::NoopSink`], [`trace::JsonlSink`], [`trace::MemorySink`]).
//!   Span ids cross thread pools explicitly via
//!   [`trace::current_span_id`] + [`trace::span_with_parent`], so
//!   scenario jobs and serve requests keep causal context.
//! - [`hist`]: fixed-bucket log-scale histograms ([`hist::Histogram`],
//!   [`hist::AtomicHistogram`]) that are lock-free to record, mergeable
//!   by addition, and bit-deterministic to summarize (p50/p90/p99).
//!
//! On top of those: [`summarize`] reduces a trace file to the
//! per-span-name table behind `cgte trace summarize`, and [`promtext`]
//! parses and validates Prometheus text expositions for the `/metrics`
//! format tests and the CI smoke job.
//!
//! Instrumentation never touches RNG streams or computed artifacts —
//! observing a run must not change its bytes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod promtext;
pub mod summarize;
pub mod trace;

pub use hist::{AtomicHistogram, Histogram};
pub use trace::{
    current_span_id, enabled, event, flush, install, level, shutdown, span, span_with_parent,
    JsonlSink, MemorySink, NoopSink, Span, TraceSink, Value, LEVEL_COARSE, LEVEL_DETAIL,
    LEVEL_FINE,
};
