//! Offline reduction of a trace JSONL file into a per-span-name table —
//! the engine behind `cgte trace summarize`.
//!
//! The reader is deliberately narrow: it extracts the `kind`, `name` and
//! `dur_us` fields from records *this crate's tracer wrote* (span names
//! are static identifiers, field order is fixed by the writer), and
//! counts anything else as malformed rather than failing the whole file.

use crate::hist::Histogram;
use std::io::BufRead;

/// Aggregates for one span name.
#[derive(Debug, Clone)]
pub struct SpanRow {
    /// The span name.
    pub name: String,
    /// Number of spans with this name.
    pub count: u64,
    /// Summed duration in microseconds.
    pub total_us: u64,
    hist: Histogram,
}

impl SpanRow {
    /// Duration quantile in microseconds (log-bucket upper bound).
    pub fn quantile_us(&self, q: f64) -> u64 {
        self.hist.quantile(q)
    }
}

/// The reduced trace: per-name span rows plus record counts.
#[derive(Debug, Clone, Default)]
pub struct TraceSummary {
    /// One row per span name, sorted by name.
    pub rows: Vec<SpanRow>,
    /// Per-event-name counts, sorted by name.
    pub event_rows: Vec<(String, u64)>,
    /// Total span records.
    pub spans: u64,
    /// Total event records.
    pub events: u64,
    /// Lines that were not recognizable records.
    pub malformed: u64,
}

/// Extracts the string value of `"key":"..."` (no unescaping beyond
/// `\"`; the tracer only writes identifier-like names).
fn str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let mut prev_backslash = false;
    for (i, ch) in rest.char_indices() {
        match ch {
            '"' if !prev_backslash => return Some(&rest[..i]),
            '\\' => prev_backslash = !prev_backslash,
            _ => prev_backslash = false,
        }
    }
    None
}

/// Extracts the integer value of `"key":N`.
fn u64_field(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let digits: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Reduces a JSONL trace to per-span-name aggregates.
pub fn summarize<R: BufRead>(reader: R) -> std::io::Result<TraceSummary> {
    let mut summary = TraceSummary::default();
    let mut rows: std::collections::BTreeMap<String, SpanRow> = std::collections::BTreeMap::new();
    let mut event_rows: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let (Some(kind), Some(name)) = (str_field(&line, "kind"), str_field(&line, "name")) else {
            summary.malformed += 1;
            continue;
        };
        match kind {
            "event" => {
                summary.events += 1;
                *event_rows.entry(name.to_string()).or_insert(0) += 1;
            }
            "span" => {
                let Some(dur) = u64_field(&line, "dur_us") else {
                    summary.malformed += 1;
                    continue;
                };
                summary.spans += 1;
                let row = rows.entry(name.to_string()).or_insert_with(|| SpanRow {
                    name: name.to_string(),
                    count: 0,
                    total_us: 0,
                    hist: Histogram::new(),
                });
                row.count += 1;
                row.total_us += dur;
                row.hist.record(dur);
            }
            _ => summary.malformed += 1,
        }
    }
    summary.rows = rows.into_values().collect();
    summary.event_rows = event_rows.into_iter().collect();
    Ok(summary)
}

impl TraceSummary {
    /// Renders the per-span-name table `cgte trace summarize` prints.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let name_w = self
            .rows
            .iter()
            .map(|r| r.name.len())
            .chain(["span".len()])
            .max()
            .unwrap_or(4);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:name_w$}  {:>8}  {:>12}  {:>10}  {:>10}  {:>10}",
            "span", "count", "total_ms", "p50_us", "p90_us", "p99_us"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:name_w$}  {:>8}  {:>12.3}  {:>10}  {:>10}  {:>10}",
                r.name,
                r.count,
                r.total_us as f64 / 1000.0,
                r.quantile_us(0.50),
                r.quantile_us(0.90),
                r.quantile_us(0.99),
            );
        }
        if !self.event_rows.is_empty() {
            let ev_w = self
                .event_rows
                .iter()
                .map(|(n, _)| n.len())
                .chain(["event".len()])
                .max()
                .unwrap_or(5);
            let _ = writeln!(out, "{:ev_w$}  {:>8}", "event", "count");
            for (name, count) in &self.event_rows {
                let _ = writeln!(out, "{name:ev_w$}  {count:>8}");
            }
        }
        let _ = writeln!(
            out,
            "spans: {}  events: {}  malformed: {}",
            self.spans, self.events, self.malformed
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarizes_spans_and_counts_events() {
        let jsonl = concat!(
            "{\"kind\":\"span\",\"name\":\"a\",\"id\":1,\"parent\":0,\"ts_us\":0,\"dur_us\":100,\"fields\":{}}\n",
            "{\"kind\":\"span\",\"name\":\"a\",\"id\":2,\"parent\":0,\"ts_us\":5,\"dur_us\":300,\"fields\":{}}\n",
            "{\"kind\":\"event\",\"name\":\"e\",\"id\":0,\"parent\":1,\"ts_us\":7,\"fields\":{}}\n",
            "{\"kind\":\"span\",\"name\":\"b\",\"id\":3,\"parent\":1,\"ts_us\":9,\"dur_us\":7,\"fields\":{}}\n",
            "not json at all\n",
        );
        let s = summarize(jsonl.as_bytes()).unwrap();
        assert_eq!(s.spans, 3);
        assert_eq!(s.events, 1);
        assert_eq!(s.malformed, 1);
        assert_eq!(s.rows.len(), 2);
        let a = &s.rows[0];
        assert_eq!((a.name.as_str(), a.count, a.total_us), ("a", 2, 400));
        // 100 -> bucket 7 (64..127); both durations <= p99 bound.
        assert!(a.quantile_us(0.99) >= 300);
        let table = s.render();
        assert!(table.contains("total_ms"), "{table}");
        assert!(
            table.contains("spans: 3  events: 1  malformed: 1"),
            "{table}"
        );
        // Events get their own per-name count table.
        assert_eq!(s.event_rows, vec![("e".to_string(), 1)]);
        assert!(table.contains("event"), "{table}");
    }

    #[test]
    fn field_extractors_handle_escapes_and_missing_keys() {
        assert_eq!(str_field("{\"name\":\"a\\\"b\"}", "name"), Some("a\\\"b"));
        assert_eq!(str_field("{\"x\":1}", "name"), None);
        assert_eq!(u64_field("{\"dur_us\":42,", "dur_us"), Some(42));
        assert_eq!(u64_field("{\"dur_us\":x}", "dur_us"), None);
    }
}
