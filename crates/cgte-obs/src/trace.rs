//! Level-gated structured tracing with pluggable sinks.
//!
//! The hot-path contract: when tracing is off (the default), every
//! instrumentation site costs one relaxed atomic load and a branch —
//! no allocation, no clock read, no lock. When a sink is installed,
//! spans and events are rendered into a per-thread scratch buffer and
//! appended to the sink as single JSONL records:
//!
//! ```text
//! {"kind":"span","name":"serve.request","id":7,"parent":3,"ts_us":12,"dur_us":345,"fields":{...}}
//! {"kind":"event","name":"cluster.retry","id":0,"parent":7,"ts_us":99,"fields":{...}}
//! ```
//!
//! Span ids are process-unique and carried in a thread-local stack, so
//! nested spans on one thread pick up their parent automatically. Work
//! handed to another thread (a crossbeam pool, a scenario worker)
//! carries causality explicitly: capture [`current_span_id`] at enqueue
//! time and reopen with [`span_with_parent`] on the worker.
//!
//! Levels are cumulative: `1` coarse (requests, jobs, rounds), `2`
//! detail (lifecycle, retries, cache traffic), `3` fine-grained.

use std::cell::{Cell, RefCell};
use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

/// Coarse spans: one per serve request, scenario job, cluster round.
pub const LEVEL_COARSE: u8 = 1;
/// Detail events: session lifecycle, retries, breaker transitions,
/// cache hits/misses, per-ingest walk accounting.
pub const LEVEL_DETAIL: u8 = 2;
/// Fine-grained instrumentation (reserved for hot-loop tracing).
pub const LEVEL_FINE: u8 = 3;

static LEVEL: AtomicU8 = AtomicU8::new(0);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static SINK: RwLock<Option<Arc<dyn TraceSink>>> = RwLock::new(None);

thread_local! {
    static CURRENT: Cell<u64> = const { Cell::new(0) };
    static SCRATCH: RefCell<String> = const { RefCell::new(String::new()) };
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// Where rendered JSONL records go. Implementations must be cheap to
/// call concurrently; the tracer renders off-lock and hands over one
/// complete line (without trailing newline) per record.
pub trait TraceSink: Send + Sync {
    /// Appends one JSONL record.
    fn write_line(&self, line: &str);
    /// Flushes buffered output (no-op by default).
    fn flush(&self) {}
}

/// A sink that discards everything: tracing machinery on, IO off.
/// Used by the bench harness to price the instrumentation itself.
#[derive(Debug, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn write_line(&self, _line: &str) {}
}

/// Appends records to a buffered file — the `--trace FILE.jsonl` sink.
pub struct JsonlSink {
    out: Mutex<std::io::BufWriter<std::fs::File>>,
}

impl JsonlSink {
    /// Creates (truncates) `path`.
    pub fn create(path: &std::path::Path) -> std::io::Result<JsonlSink> {
        let f = std::fs::File::create(path)?;
        Ok(JsonlSink {
            out: Mutex::new(std::io::BufWriter::new(f)),
        })
    }
}

impl TraceSink for JsonlSink {
    fn write_line(&self, line: &str) {
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        let _ = out.write_all(line.as_bytes());
        let _ = out.write_all(b"\n");
    }

    fn flush(&self) {
        let _ = self.out.lock().unwrap_or_else(|e| e.into_inner()).flush();
    }
}

/// Collects records in memory — the integration-test sink.
#[derive(Debug, Default)]
pub struct MemorySink {
    lines: Mutex<Vec<String>>,
}

impl MemorySink {
    /// An empty memory sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// A copy of every record collected so far.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Drops all collected records.
    pub fn clear(&self) {
        self.lines.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

impl TraceSink for MemorySink {
    fn write_line(&self, line: &str) {
        self.lines
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(line.to_string());
    }
}

/// Installs `sink` and enables tracing at `level` (0 disables).
pub fn install(sink: Arc<dyn TraceSink>, level: u8) {
    *SINK.write().unwrap_or_else(|e| e.into_inner()) = Some(sink);
    LEVEL.store(level, Ordering::Relaxed);
}

/// Disables tracing, flushes and drops the sink.
pub fn shutdown() {
    LEVEL.store(0, Ordering::Relaxed);
    let sink = SINK.write().unwrap_or_else(|e| e.into_inner()).take();
    if let Some(s) = sink {
        s.flush();
    }
}

/// Flushes the installed sink without disabling tracing.
pub fn flush() {
    if let Some(s) = SINK.read().unwrap_or_else(|e| e.into_inner()).as_ref() {
        s.flush();
    }
}

/// The active trace level (0 = off).
pub fn level() -> u8 {
    LEVEL.load(Ordering::Relaxed)
}

/// Whether records at `l` are currently emitted. This is the one check
/// every instrumentation site pays when tracing is off.
#[inline]
pub fn enabled(l: u8) -> bool {
    LEVEL.load(Ordering::Relaxed) >= l
}

/// The id of the innermost active span on this thread (0 if none).
/// Capture this before handing work to another thread and reopen the
/// context there with [`span_with_parent`].
pub fn current_span_id() -> u64 {
    CURRENT.with(|c| c.get())
}

/// A typed field value; rendered without allocating when tracing is off
/// (the slice never gets built into a record).
#[derive(Debug, Clone, Copy)]
pub enum Value<'a> {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (rendered via the shortest round-trip `Display`).
    F64(f64),
    /// String (JSON-escaped).
    Str(&'a str),
    /// Boolean.
    Bool(bool),
}

fn escape_into(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn push_value(out: &mut String, v: &Value<'_>) {
    match v {
        Value::U64(x) => {
            let _ = write!(out, "{x}");
        }
        Value::I64(x) => {
            let _ = write!(out, "{x}");
        }
        Value::F64(x) => {
            if x.is_finite() {
                let _ = write!(out, "{x}");
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => {
            out.push('"');
            escape_into(out, s);
            out.push('"');
        }
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
    }
}

fn emit(line: &str) {
    if let Some(s) = SINK.read().unwrap_or_else(|e| e.into_inner()).as_ref() {
        s.write_line(line);
    }
}

fn render_and_emit(
    kind: &str,
    name: &str,
    id: u64,
    parent: u64,
    ts_us: u64,
    dur_us: Option<u64>,
    fields: &str,
) {
    SCRATCH.with(|buf| {
        let line = &mut *buf.borrow_mut();
        line.clear();
        let _ = write!(line, "{{\"kind\":\"{kind}\",\"name\":\"");
        escape_into(line, name);
        let _ = write!(line, "\",\"id\":{id},\"parent\":{parent},\"ts_us\":{ts_us}");
        if let Some(d) = dur_us {
            let _ = write!(line, ",\"dur_us\":{d}");
        }
        let _ = write!(line, ",\"fields\":{{{fields}}}}}");
        emit(line);
    });
}

/// Emits a point-in-time event at `level` with the given fields,
/// parented to the innermost active span of this thread.
pub fn event(level: u8, name: &str, fields: &[(&str, Value<'_>)]) {
    if !enabled(level) {
        return;
    }
    let mut rendered = String::new();
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            rendered.push(',');
        }
        rendered.push('"');
        escape_into(&mut rendered, k);
        rendered.push_str("\":");
        push_value(&mut rendered, v);
    }
    render_and_emit(
        "event",
        name,
        0,
        current_span_id(),
        now_us(),
        None,
        &rendered,
    );
}

/// A timed span, emitted as one record when dropped. Obtain via
/// [`span`] or [`span_with_parent`]; attach fields with the `field_*`
/// methods (no-ops when the span is inactive).
pub struct Span {
    name: &'static str,
    id: u64,
    parent: u64,
    prev: u64,
    ts_us: u64,
    start: Option<Instant>,
    fields: String,
}

/// Opens a span at `level`, parented to the innermost active span of
/// this thread. Inactive (and free) when tracing is below `level`.
pub fn span(level: u8, name: &'static str) -> Span {
    let parent = if enabled(level) { current_span_id() } else { 0 };
    span_with_parent(level, name, parent)
}

/// Opens a span at `level` with an explicit parent id — the cross-thread
/// handoff entry point. Pass the value of [`current_span_id`] captured
/// on the enqueueing thread (0 for a root span).
pub fn span_with_parent(level: u8, name: &'static str, parent: u64) -> Span {
    if !enabled(level) {
        return Span {
            name,
            id: 0,
            parent: 0,
            prev: 0,
            ts_us: 0,
            start: None,
            fields: String::new(),
        };
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let prev = CURRENT.with(|c| c.replace(id));
    Span {
        name,
        id,
        parent,
        prev,
        ts_us: now_us(),
        start: Some(Instant::now()),
        fields: String::new(),
    }
}

impl Span {
    /// This span's id (0 when inactive); pass to [`span_with_parent`]
    /// on another thread to preserve causality.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Whether the span will emit a record on drop.
    pub fn is_active(&self) -> bool {
        self.start.is_some()
    }

    fn push_field(&mut self, key: &str, v: Value<'_>) {
        if self.start.is_none() {
            return;
        }
        if !self.fields.is_empty() {
            self.fields.push(',');
        }
        self.fields.push('"');
        escape_into(&mut self.fields, key);
        self.fields.push_str("\":");
        push_value(&mut self.fields, &v);
    }

    /// Attaches an unsigned-integer field.
    pub fn field_u64(&mut self, key: &str, v: u64) {
        self.push_field(key, Value::U64(v));
    }

    /// Attaches a float field.
    pub fn field_f64(&mut self, key: &str, v: f64) {
        self.push_field(key, Value::F64(v));
    }

    /// Attaches a string field.
    pub fn field_str(&mut self, key: &str, v: &str) {
        self.push_field(key, Value::Str(v));
    }

    /// Attaches a boolean field.
    pub fn field_bool(&mut self, key: &str, v: bool) {
        self.push_field(key, Value::Bool(v));
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else {
            return;
        };
        CURRENT.with(|c| c.set(self.prev));
        let dur_us = start.elapsed().as_micros() as u64;
        render_and_emit(
            "span",
            self.name,
            self.id,
            self.parent,
            self.ts_us,
            Some(dur_us),
            &self.fields,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tracer is process-global; tests that install sinks must not
    /// interleave.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_tracing_emits_nothing_and_spans_are_inactive() {
        let _g = guard();
        shutdown();
        assert!(!enabled(LEVEL_COARSE));
        let s = span(LEVEL_COARSE, "nothing");
        assert_eq!(s.id(), 0);
        assert!(!s.is_active());
        drop(s);
        event(LEVEL_COARSE, "nothing", &[("k", Value::U64(1))]);
        assert_eq!(current_span_id(), 0);
    }

    #[test]
    fn nested_spans_carry_parents_and_fields() {
        let _g = guard();
        let sink = Arc::new(MemorySink::new());
        install(sink.clone(), LEVEL_DETAIL);
        {
            let outer = span(LEVEL_COARSE, "outer");
            let outer_id = outer.id();
            assert!(outer_id > 0);
            assert_eq!(current_span_id(), outer_id);
            {
                let mut inner = span(LEVEL_DETAIL, "inner");
                inner.field_u64("n", 7);
                inner.field_str("tag", "a\"b");
                assert_eq!(current_span_id(), inner.id());
            }
            assert_eq!(current_span_id(), outer_id);
            event(LEVEL_DETAIL, "ping", &[("ok", Value::Bool(true))]);
        }
        shutdown();
        let lines = sink.lines();
        assert_eq!(lines.len(), 3, "{lines:?}");
        // inner closes first.
        assert!(lines[0].contains("\"name\":\"inner\""), "{}", lines[0]);
        assert!(lines[0].contains("\"n\":7"), "{}", lines[0]);
        assert!(lines[0].contains("\"tag\":\"a\\\"b\""), "{}", lines[0]);
        assert!(lines[1].contains("\"name\":\"ping\""), "{}", lines[1]);
        assert!(lines[2].contains("\"name\":\"outer\""), "{}", lines[2]);
        // The inner span and the event are parented to the outer span.
        let outer_id: u64 = lines[2]
            .split("\"id\":")
            .nth(1)
            .unwrap()
            .split(',')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(lines[0].contains(&format!("\"parent\":{outer_id}")));
        assert!(lines[1].contains(&format!("\"parent\":{outer_id}")));
    }

    #[test]
    fn explicit_parent_survives_thread_handoff() {
        let _g = guard();
        let sink = Arc::new(MemorySink::new());
        install(sink.clone(), LEVEL_COARSE);
        let parent_id;
        {
            let parent = span(LEVEL_COARSE, "dispatch");
            parent_id = parent.id();
            let captured = current_span_id();
            std::thread::spawn(move || {
                let child = span_with_parent(LEVEL_COARSE, "worker", captured);
                assert!(child.id() > 0);
            })
            .join()
            .unwrap();
        }
        shutdown();
        let lines = sink.lines();
        let worker = lines
            .iter()
            .find(|l| l.contains("\"name\":\"worker\""))
            .unwrap();
        assert!(
            worker.contains(&format!("\"parent\":{parent_id}")),
            "{worker}"
        );
    }

    #[test]
    fn level_gates_spans_and_events() {
        let _g = guard();
        let sink = Arc::new(MemorySink::new());
        install(sink.clone(), LEVEL_COARSE);
        let s = span(LEVEL_DETAIL, "too-fine");
        assert!(!s.is_active());
        drop(s);
        event(LEVEL_DETAIL, "too-fine", &[]);
        event(LEVEL_COARSE, "coarse", &[]);
        shutdown();
        let lines = sink.lines();
        assert_eq!(lines.len(), 1, "{lines:?}");
        assert!(lines[0].contains("\"name\":\"coarse\""));
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        let _g = guard();
        let dir = std::env::temp_dir().join(format!("cgte-obs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jsonl");
        install(Arc::new(JsonlSink::create(&path).unwrap()), LEVEL_COARSE);
        drop(span(LEVEL_COARSE, "one"));
        shutdown();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("\"name\":\"one\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
