//! A Prometheus text-exposition (version 0.0.4) parser and validator.
//!
//! Used by the serve test suite and the CI "metrics + trace smoke" job
//! (via `cgte metrics check`) to hold `/metrics` to the format contract:
//! every series carries `# HELP` and `# TYPE` lines, histogram buckets
//! are cumulative and monotone, and `_sum`/`_count`/`+Inf` agree.

use std::collections::BTreeMap;

/// One sample line: `name{labels} value`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// The full sample name as written (may carry `_bucket`/`_sum`/
    /// `_count` suffixes for histograms).
    pub name: String,
    /// Label pairs in the order written.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl Sample {
    /// The label value for `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The labels with `le` removed — a histogram series key.
    fn labels_without_le(&self) -> Vec<(String, String)> {
        self.labels
            .iter()
            .filter(|(k, _)| k != "le")
            .cloned()
            .collect()
    }
}

/// A parsed exposition: declared metadata plus every sample.
#[derive(Debug, Clone, Default)]
pub struct Exposition {
    /// `# TYPE` declarations by metric family name.
    pub types: BTreeMap<String, String>,
    /// `# HELP` declarations by metric family name.
    pub helps: BTreeMap<String, String>,
    /// All samples, in exposition order.
    pub samples: Vec<Sample>,
}

impl Exposition {
    /// All samples of one family (histogram suffixes included).
    pub fn family(&self, name: &str) -> Vec<&Sample> {
        self.samples
            .iter()
            .filter(|s| family_of(&s.name) == name)
            .collect()
    }

    /// The single value of an unlabelled series, if present exactly once.
    pub fn value(&self, name: &str) -> Option<f64> {
        let hits: Vec<&Sample> = self
            .samples
            .iter()
            .filter(|s| s.name == name && s.labels.is_empty())
            .collect();
        match hits.as_slice() {
            [one] => Some(one.value),
            _ => None,
        }
    }
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// The metric family a sample belongs to: histogram suffixes are folded
/// onto their base name when that base has a histogram TYPE declaration;
/// callers without the type map can use the raw suffix-stripped guess.
fn family_of(name: &str) -> &str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            return base;
        }
    }
    name
}

fn parse_value(s: &str) -> Result<f64, String> {
    match s {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        other => other.parse().map_err(|_| format!("bad value {other:?}")),
    }
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=': {rest:?}"))?;
        let key = rest[..eq].trim().to_string();
        if !valid_name(&key) {
            return Err(format!("bad label name {key:?}"));
        }
        rest = rest[eq + 1..].trim_start();
        if !rest.starts_with('"') {
            return Err(format!("unquoted label value after {key:?}"));
        }
        rest = &rest[1..];
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    other => return Err(format!("bad escape {other:?} in label {key:?}")),
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                c => value.push(c),
            }
        }
        let end = end.ok_or_else(|| format!("unterminated label value for {key:?}"))?;
        labels.push((key, value));
        rest = rest[end + 1..].trim_start();
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped.trim_start();
        } else if !rest.is_empty() {
            return Err(format!("junk after label value: {rest:?}"));
        }
    }
    Ok(labels)
}

/// Parses an exposition document; fails on the first malformed line.
pub fn parse(text: &str) -> Result<Exposition, String> {
    let mut exp = Exposition::default();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        let fail = |msg: String| format!("line {}: {msg}", lineno + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest
                .split_once(' ')
                .map(|(n, h)| (n, h.to_string()))
                .unwrap_or((rest, String::new()));
            if !valid_name(name) {
                return Err(fail(format!("bad HELP metric name {name:?}")));
            }
            exp.helps.insert(name.to_string(), help);
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest
                .split_once(' ')
                .ok_or_else(|| fail("TYPE line without a type".into()))?;
            if !valid_name(name) {
                return Err(fail(format!("bad TYPE metric name {name:?}")));
            }
            exp.types.insert(name.to_string(), kind.trim().to_string());
            continue;
        }
        if line.starts_with('#') {
            continue; // plain comment
        }
        // Sample: name[{labels}] value
        let (name_part, labels, value_part) = match line.find('{') {
            Some(open) => {
                let close = line
                    .rfind('}')
                    .ok_or_else(|| fail("unterminated label set".into()))?;
                (
                    &line[..open],
                    parse_labels(&line[open + 1..close]).map_err(fail)?,
                    line[close + 1..].trim(),
                )
            }
            None => {
                let (n, v) = line
                    .split_once(char::is_whitespace)
                    .ok_or_else(|| fail("sample without value".into()))?;
                (n, Vec::new(), v.trim())
            }
        };
        let name = name_part.trim();
        if !valid_name(name) {
            return Err(fail(format!("bad metric name {name:?}")));
        }
        // Optional timestamp after the value is not produced by cgte;
        // reject it so drift is caught early.
        let value = parse_value(value_part).map_err(fail)?;
        exp.samples.push(Sample {
            name: name.to_string(),
            labels,
            value,
        });
    }
    Ok(exp)
}

/// Summary numbers from a successful validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpositionStats {
    /// Number of metric families seen.
    pub families: usize,
    /// Number of sample lines.
    pub samples: usize,
    /// Number of histogram families checked.
    pub histograms: usize,
}

/// Parses and validates `text`; returns every violated rule.
///
/// Checks, per family: a `# TYPE` line of a known kind and a `# HELP`
/// line exist; counter values are finite and non-negative; histograms
/// expose `_sum` and `_count`, their `_bucket` series carry `le` labels,
/// buckets are cumulative (monotone non-decreasing in `le`), a `+Inf`
/// bucket exists, and it equals `_count`.
pub fn validate(text: &str) -> Result<ExpositionStats, Vec<String>> {
    let exp = match parse(text) {
        Ok(e) => e,
        Err(e) => return Err(vec![e]),
    };
    let mut errors = Vec::new();
    let mut families: BTreeMap<String, Vec<&Sample>> = BTreeMap::new();
    for s in &exp.samples {
        let base = family_of(&s.name);
        // A suffix only folds into a histogram family if one is declared;
        // e.g. a counter literally named `x_count` stays its own family.
        let family = if exp.types.get(base).map(String::as_str) == Some("histogram") {
            base
        } else {
            s.name.as_str()
        };
        families.entry(family.to_string()).or_default().push(s);
    }
    for (family, samples) in &families {
        let kind = match exp.types.get(family) {
            Some(k) => k.as_str(),
            None => {
                errors.push(format!("{family}: no # TYPE line"));
                continue;
            }
        };
        if !exp.helps.contains_key(family) {
            errors.push(format!("{family}: no # HELP line"));
        }
        match kind {
            "counter" => {
                for s in samples {
                    if !s.value.is_finite() || s.value < 0.0 {
                        errors.push(format!("{family}: counter value {} invalid", s.value));
                    }
                }
            }
            "gauge" => {
                for s in samples {
                    if s.value.is_nan() {
                        errors.push(format!("{family}: gauge value is NaN"));
                    }
                }
            }
            "histogram" => validate_histogram(family, samples, &mut errors),
            other => errors.push(format!("{family}: unknown type {other:?}")),
        }
    }
    if errors.is_empty() {
        let histograms = exp
            .types
            .values()
            .filter(|k| k.as_str() == "histogram")
            .count();
        Ok(ExpositionStats {
            families: families.len(),
            samples: exp.samples.len(),
            histograms,
        })
    } else {
        Err(errors)
    }
}

fn validate_histogram(family: &str, samples: &[&Sample], errors: &mut Vec<String>) {
    // Group by the non-le label set.
    let mut groups: BTreeMap<String, Vec<&Sample>> = BTreeMap::new();
    for s in samples {
        let key = format!("{:?}", s.labels_without_le());
        groups.entry(key).or_default().push(s);
    }
    for group in groups.values() {
        let ctx = || {
            let labels = group[0].labels_without_le();
            if labels.is_empty() {
                family.to_string()
            } else {
                format!("{family}{labels:?}")
            }
        };
        let mut buckets: Vec<(f64, f64)> = Vec::new();
        let mut sum = None;
        let mut count = None;
        for s in group {
            if s.name.ends_with("_bucket") {
                match s.label("le").map(parse_value) {
                    Some(Ok(le)) => buckets.push((le, s.value)),
                    _ => errors.push(format!("{}: _bucket without a valid le label", ctx())),
                }
            } else if s.name.ends_with("_sum") {
                sum = Some(s.value);
            } else if s.name.ends_with("_count") {
                count = Some(s.value);
            } else {
                errors.push(format!("{}: stray histogram sample {}", ctx(), s.name));
            }
        }
        if sum.is_none() {
            errors.push(format!("{}: missing _sum", ctx()));
        }
        let Some(count) = count else {
            errors.push(format!("{}: missing _count", ctx()));
            continue;
        };
        buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        for w in buckets.windows(2) {
            if w[1].1 < w[0].1 {
                errors.push(format!(
                    "{}: bucket le={} count {} below le={} count {}",
                    ctx(),
                    w[1].0,
                    w[1].1,
                    w[0].0,
                    w[0].1
                ));
            }
            if w[1].0 == w[0].0 {
                errors.push(format!("{}: duplicate bucket le={}", ctx(), w[1].0));
            }
        }
        match buckets.last() {
            Some((le, v)) if le.is_infinite() => {
                if *v != count {
                    errors.push(format!("{}: +Inf bucket {} != _count {}", ctx(), v, count));
                }
            }
            _ => errors.push(format!("{}: missing +Inf bucket", ctx())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "\
# HELP demo_requests_total Requests handled.
# TYPE demo_requests_total counter
demo_requests_total{endpoint=\"ingest\"} 3
demo_requests_total{endpoint=\"estimate\"} 2
# HELP demo_up Server liveness.
# TYPE demo_up gauge
demo_up 1
# HELP demo_latency_seconds Request latency.
# TYPE demo_latency_seconds histogram
demo_latency_seconds_bucket{le=\"0.001\"} 1
demo_latency_seconds_bucket{le=\"0.01\"} 4
demo_latency_seconds_bucket{le=\"+Inf\"} 5
demo_latency_seconds_sum 0.02
demo_latency_seconds_count 5
";

    #[test]
    fn parses_and_validates_a_conforming_document() {
        let exp = parse(GOOD).unwrap();
        assert_eq!(exp.samples.len(), 8);
        assert_eq!(exp.value("demo_up"), Some(1.0));
        assert_eq!(
            exp.samples[0].label("endpoint"),
            Some("ingest"),
            "{:?}",
            exp.samples[0]
        );
        let stats = validate(GOOD).unwrap();
        assert_eq!(
            stats,
            ExpositionStats {
                families: 3,
                samples: 8,
                histograms: 1
            }
        );
    }

    #[test]
    fn missing_type_line_is_an_error() {
        let doc = "demo_x 1\n";
        let errs = validate(doc).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("no # TYPE")), "{errs:?}");
    }

    #[test]
    fn non_monotone_buckets_are_an_error() {
        let doc = "\
# HELP h H.
# TYPE h histogram
h_bucket{le=\"1\"} 5
h_bucket{le=\"2\"} 3
h_bucket{le=\"+Inf\"} 5
h_sum 9
h_count 5
";
        let errs = validate(doc).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("below")), "{errs:?}");
    }

    #[test]
    fn inf_bucket_must_match_count() {
        let doc = "\
# HELP h H.
# TYPE h histogram
h_bucket{le=\"+Inf\"} 4
h_sum 9
h_count 5
";
        let errs = validate(doc).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("+Inf bucket")), "{errs:?}");
    }

    #[test]
    fn histogram_groups_split_by_labels() {
        let doc = "\
# HELP h H.
# TYPE h histogram
h_bucket{endpoint=\"a\",le=\"1\"} 1
h_bucket{endpoint=\"a\",le=\"+Inf\"} 2
h_sum{endpoint=\"a\"} 3
h_count{endpoint=\"a\"} 2
h_bucket{endpoint=\"b\",le=\"1\"} 0
h_bucket{endpoint=\"b\",le=\"+Inf\"} 1
h_sum{endpoint=\"b\"} 1
h_count{endpoint=\"b\"} 1
";
        let stats = validate(doc).unwrap();
        assert_eq!(stats.histograms, 1);
        assert_eq!(stats.samples, 8);
    }

    #[test]
    fn counter_named_like_a_suffix_is_its_own_family() {
        // `x_count` with a counter TYPE must not be folded into a
        // nonexistent histogram family `x`.
        let doc = "\
# HELP x_count Things counted.
# TYPE x_count counter
x_count 3
";
        let stats = validate(doc).unwrap();
        assert_eq!(stats.families, 1);
    }

    #[test]
    fn label_escapes_round_trip() {
        let doc = "# HELP m M.\n# TYPE m gauge\nm{k=\"a\\\"b\\\\c\\nd\"} 1\n";
        let exp = parse(doc).unwrap();
        assert_eq!(exp.samples[0].label("k"), Some("a\"b\\c\nd"));
        assert!(validate(doc).is_ok());
    }

    #[test]
    fn malformed_lines_fail_parse() {
        assert!(parse("m{k=1} 2\n").is_err());
        assert!(parse("m{k=\"v\" 2\n").is_err());
        assert!(parse("1bad 2\n").is_err());
        assert!(parse("m foo\n").is_err());
    }
}
