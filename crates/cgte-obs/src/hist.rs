//! Fixed-bucket log-scale histograms for latency and size accounting.
//!
//! Buckets are powers of two: bucket `i` holds values whose bit length is
//! `i`, i.e. `v == 0` lands in bucket 0 and `2^(i-1) <= v < 2^i` lands in
//! bucket `i`. The layout is fixed at compile time, so two histograms are
//! always mergeable by element-wise addition and every derived statistic
//! (quantiles included) is a pure function of integer counts —
//! bit-deterministic regardless of thread interleaving, like the estimator
//! accumulators in `cgte-core`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: bit lengths 0 (value 0) through 64 (values ≥ 2^63).
pub const NUM_BUCKETS: usize = 65;

/// Index of the bucket that `v` falls into.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (`2^i - 1`, saturating at
/// `u64::MAX` for the last bucket).
#[inline]
pub fn bucket_upper(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A plain (single-threaded) log-scale histogram.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: [u64; NUM_BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: [0; NUM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Adds every observation of `other` into `self` (element-wise; the
    /// result is identical to having recorded both observation streams
    /// into one histogram, in any order).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Per-bucket counts.
    pub fn counts(&self) -> &[u64; NUM_BUCKETS] {
        &self.counts
    }

    /// The value at quantile `q` in `[0, 1]`, reported as the inclusive
    /// upper bound of the bucket in which that rank falls (0 when empty).
    ///
    /// Because the answer depends only on integer bucket counts, it is
    /// bit-deterministic for a given observation multiset.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based, at least 1.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(NUM_BUCKETS - 1)
    }
}

/// A lock-free shared histogram: `record` is a relaxed `fetch_add` per
/// field, safe to call from any number of threads.
///
/// Snapshots read each counter independently (no cross-counter atomicity);
/// a snapshot taken while writers are active may be mid-update by a few
/// observations, but every counter is itself exact and monotone, which is
/// all the Prometheus exposition format requires.
#[derive(Debug)]
pub struct AtomicHistogram {
    counts: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        AtomicHistogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation (lock-free).
    pub fn record(&self, v: u64) {
        self.counts[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total number of observations so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copies the current counters into `out`, replacing its contents.
    pub fn snapshot_into(&self, out: &mut Histogram) {
        for (dst, src) in out.counts.iter_mut().zip(self.counts.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        out.count = self.count.load(Ordering::Relaxed);
        out.sum = self.sum.load(Ordering::Relaxed);
    }

    /// Convenience: an owned snapshot.
    pub fn snapshot(&self) -> Histogram {
        let mut h = Histogram::new();
        self.snapshot_into(&mut h);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_bit_length() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
        // Every value is <= the upper bound of its bucket and > the bound
        // of the previous one.
        for v in [0u64, 1, 2, 5, 1023, 1024, 1 << 40] {
            let b = bucket_of(v);
            assert!(v <= bucket_upper(b));
            if b > 0 {
                assert!(v > bucket_upper(b - 1));
            }
        }
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        // Median of 1..=100 is rank 50 -> value 50 -> bucket 6 (32..63).
        assert_eq!(h.quantile(0.5), 63);
        assert_eq!(h.quantile(0.0), 1); // rank clamps to 1 -> bucket of 1
        assert_eq!(h.quantile(1.0), 127); // 100 lives in bucket 7 (64..127)
        assert_eq!(Histogram::new().quantile(0.5), 0);
    }

    #[test]
    fn merge_matches_combined_stream() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [3u64, 9, 100, 5000] {
            a.record(v);
            all.record(v);
        }
        for v in [0u64, 70, 70, 1 << 30] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.counts(), all.counts());
        assert_eq!(a.count(), all.count());
        assert_eq!(a.sum(), all.sum());
        assert_eq!(a.quantile(0.9), all.quantile(0.9));
    }

    #[test]
    fn atomic_snapshot_equals_serial_record() {
        let ah = AtomicHistogram::new();
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 1000, 1_000_000] {
            ah.record(v);
            h.record(v);
        }
        let snap = ah.snapshot();
        assert_eq!(snap.counts(), h.counts());
        assert_eq!(snap.count(), h.count());
        assert_eq!(snap.sum(), h.sum());
    }

    #[test]
    fn concurrent_records_all_land() {
        let ah = AtomicHistogram::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let ah = &ah;
                s.spawn(move || {
                    for i in 0..1000u64 {
                        ah.record(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(ah.count(), 4000);
        let snap = ah.snapshot();
        assert_eq!(snap.counts().iter().sum::<u64>(), 4000);
    }
}
