//! Category-graph exporters — the machine-readable substitute for the
//! paper's www.geosocialmap.com visualization service (§7.3).
//!
//! All writers are dependency-free and emit deterministic output (edges
//! sorted by descending weight, ties by category id), so exports are
//! diff-able across runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod plot;

pub use export::{to_csv_edges, to_dot, to_graphml, to_json, top_edges_report, ExportOptions};
pub use plot::{svg_line_plot, PlotOptions, PlotSeries};
