//! Minimal dependency-free SVG line plots, for rendering the NRMSE curves
//! of the reproduction figures (log-log axes like the paper's plots).

use std::fmt::Write as _;

/// One labelled curve.
#[derive(Debug, Clone, PartialEq)]
pub struct PlotSeries {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points; non-finite or non-positive points are skipped on
    /// log axes.
    pub points: Vec<(f64, f64)>,
}

/// Plot configuration.
#[derive(Debug, Clone)]
pub struct PlotOptions {
    /// Chart title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Logarithmic x axis.
    pub log_x: bool,
    /// Logarithmic y axis.
    pub log_y: bool,
    /// Canvas width in pixels.
    pub width: u32,
    /// Canvas height in pixels.
    pub height: u32,
}

impl Default for PlotOptions {
    fn default() -> Self {
        PlotOptions {
            title: String::new(),
            x_label: "|S|".into(),
            y_label: "NRMSE".into(),
            log_x: true,
            log_y: true,
            width: 640,
            height: 420,
        }
    }
}

const COLORS: [&str; 8] = [
    "#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd", "#8c564b", "#17becf", "#7f7f7f",
];

fn transform(v: f64, log: bool) -> Option<f64> {
    if !v.is_finite() {
        return None;
    }
    if log {
        (v > 0.0).then(|| v.log10())
    } else {
        Some(v)
    }
}

/// Renders an SVG line chart of the given series.
///
/// Returns a self-contained `<svg>` document; empty or fully-degenerate
/// input produces a chart with axes but no curves.
pub fn svg_line_plot(series: &[PlotSeries], opts: &PlotOptions) -> String {
    let (w, h) = (opts.width as f64, opts.height as f64);
    let (ml, mr, mt, mb) = (62.0, 140.0, 36.0, 48.0); // margins (legend right)
    let (pw, ph) = (w - ml - mr, h - mt - mb);

    // Collect transformed points per series.
    let tseries: Vec<(usize, Vec<(f64, f64)>)> = series
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let pts = s
                .points
                .iter()
                .filter_map(|&(x, y)| Some((transform(x, opts.log_x)?, transform(y, opts.log_y)?)))
                .collect();
            (i, pts)
        })
        .collect();
    let all: Vec<(f64, f64)> = tseries
        .iter()
        .flat_map(|(_, p)| p.iter().copied())
        .collect();
    let (x0, x1, y0, y1) = if all.is_empty() {
        (0.0, 1.0, 0.0, 1.0)
    } else {
        let mut xs: Vec<f64> = all.iter().map(|p| p.0).collect();
        let mut ys: Vec<f64> = all.iter().map(|p| p.1).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        ys.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let pad = |lo: f64, hi: f64| {
            let d = (hi - lo).max(1e-9) * 0.05;
            (lo - d, hi + d)
        };
        let (x0, x1) = pad(xs[0], xs[xs.len() - 1]);
        let (y0, y1) = pad(ys[0], ys[ys.len() - 1]);
        (x0, x1, y0, y1)
    };
    let sx = move |x: f64| ml + (x - x0) / (x1 - x0) * pw;
    let sy = move |y: f64| mt + (1.0 - (y - y0) / (y1 - y0)) * ph;

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\" \
         font-family=\"sans-serif\" font-size=\"12\">",
        opts.width, opts.height
    );
    let _ = writeln!(svg, "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>");
    // Frame.
    let _ = writeln!(
        svg,
        "<rect x=\"{ml}\" y=\"{mt}\" width=\"{pw}\" height=\"{ph}\" fill=\"none\" stroke=\"#333\"/>"
    );
    // Title and axis labels.
    if !opts.title.is_empty() {
        let _ = writeln!(
            svg,
            "<text x=\"{}\" y=\"22\" text-anchor=\"middle\" font-size=\"14\">{}</text>",
            ml + pw / 2.0,
            xml_escape(&opts.title)
        );
    }
    let _ = writeln!(
        svg,
        "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\">{}</text>",
        ml + pw / 2.0,
        h - 10.0,
        xml_escape(&opts.x_label)
    );
    let _ = writeln!(
        svg,
        "<text x=\"16\" y=\"{}\" text-anchor=\"middle\" transform=\"rotate(-90 16 {})\">{}</text>",
        mt + ph / 2.0,
        mt + ph / 2.0,
        xml_escape(&opts.y_label)
    );
    // Ticks: decades on log axes, 5 linear ticks otherwise.
    let ticks = |lo: f64, hi: f64, log: bool| -> Vec<(f64, String)> {
        if log {
            let (a, b) = (lo.floor() as i64, hi.ceil() as i64);
            (a..=b)
                .filter(|d| (*d as f64) >= lo && (*d as f64) <= hi)
                .map(|d| (d as f64, format!("1e{d}")))
                .collect()
        } else {
            (0..=4)
                .map(|i| {
                    let v = lo + (hi - lo) * i as f64 / 4.0;
                    (v, format!("{v:.2}"))
                })
                .collect()
        }
    };
    for (x, label) in ticks(x0, x1, opts.log_x) {
        let px = sx(x);
        let _ = writeln!(
            svg,
            "<line x1=\"{px}\" y1=\"{mt}\" x2=\"{px}\" y2=\"{}\" stroke=\"#ddd\"/>\
             <text x=\"{px}\" y=\"{}\" text-anchor=\"middle\">{label}</text>",
            mt + ph,
            mt + ph + 16.0
        );
    }
    for (y, label) in ticks(y0, y1, opts.log_y) {
        let py = sy(y);
        let _ = writeln!(
            svg,
            "<line x1=\"{ml}\" y1=\"{py}\" x2=\"{}\" y2=\"{py}\" stroke=\"#ddd\"/>\
             <text x=\"{}\" y=\"{}\" text-anchor=\"end\">{label}</text>",
            ml + pw,
            ml - 6.0,
            py + 4.0
        );
    }
    // Curves + legend.
    for (i, pts) in &tseries {
        let color = COLORS[i % COLORS.len()];
        if !pts.is_empty() {
            let path: Vec<String> = pts
                .iter()
                .map(|&(x, y)| format!("{:.1},{:.1}", sx(x), sy(y)))
                .collect();
            let _ = writeln!(
                svg,
                "<polyline points=\"{}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"1.8\"/>",
                path.join(" ")
            );
            for &(x, y) in pts {
                let _ = writeln!(
                    svg,
                    "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"2.6\" fill=\"{color}\"/>",
                    sx(x),
                    sy(y)
                );
            }
        }
        let ly = mt + 14.0 + 18.0 * *i as f64;
        let _ = writeln!(
            svg,
            "<line x1=\"{}\" y1=\"{ly}\" x2=\"{}\" y2=\"{ly}\" stroke=\"{color}\" stroke-width=\"2\"/>\
             <text x=\"{}\" y=\"{}\">{}</text>",
            ml + pw + 8.0,
            ml + pw + 28.0,
            ml + pw + 34.0,
            ly + 4.0,
            xml_escape(&series[*i].label)
        );
    }
    svg.push_str("</svg>\n");
    svg
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> Vec<PlotSeries> {
        vec![
            PlotSeries {
                label: "induced".into(),
                points: vec![(100.0, 0.3), (1000.0, 0.1), (10000.0, 0.03)],
            },
            PlotSeries {
                label: "star".into(),
                points: vec![(100.0, 0.2), (1000.0, 0.05), (10000.0, 0.015)],
            },
        ]
    }

    #[test]
    fn svg_has_curves_and_legend() {
        let svg = svg_line_plot(&series(), &PlotOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains(">induced</text>"));
        assert!(svg.contains(">star</text>"));
    }

    #[test]
    fn log_ticks_at_decades() {
        let svg = svg_line_plot(&series(), &PlotOptions::default());
        assert!(svg.contains("1e2"));
        assert!(svg.contains("1e4"));
        assert!(svg.contains("1e-1"));
    }

    #[test]
    fn nonpositive_points_skipped_on_log_axes() {
        let s = vec![PlotSeries {
            label: "x".into(),
            points: vec![(0.0, 1.0), (10.0, 0.5)],
        }];
        let svg = svg_line_plot(&s, &PlotOptions::default());
        assert_eq!(svg.matches("<circle").count(), 1);
    }

    #[test]
    fn empty_series_still_renders_axes() {
        let svg = svg_line_plot(&[], &PlotOptions::default());
        assert!(svg.contains("<rect"));
        assert!(!svg.contains("<polyline"));
    }

    #[test]
    fn linear_axes_supported() {
        let opts = PlotOptions {
            log_x: false,
            log_y: false,
            ..Default::default()
        };
        let svg = svg_line_plot(&series(), &opts);
        assert!(svg.contains("<polyline"));
    }

    #[test]
    fn title_is_escaped() {
        let opts = PlotOptions {
            title: "a < b & c".into(),
            ..Default::default()
        };
        let svg = svg_line_plot(&series(), &opts);
        assert!(svg.contains("a &lt; b &amp; c"));
    }
}
