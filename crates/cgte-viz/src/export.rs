//! DOT / JSON / GraphML / CSV writers for [`CategoryGraph`]s.

use cgte_graph::{CategoryEdge, CategoryGraph};
use std::fmt::Write as _;

/// Options shared by the exporters.
#[derive(Debug, Clone, Default)]
pub struct ExportOptions {
    /// Human-readable category names; index = category id. Missing or
    /// absent entries fall back to `c<ID>`.
    pub labels: Vec<String>,
    /// Keep only the `top_k` heaviest edges (0 = all).
    pub top_k: usize,
    /// Drop edges with weight strictly below this threshold.
    pub min_weight: f64,
    /// Skip categories with (estimated) size 0 from node lists.
    pub skip_empty: bool,
}

impl ExportOptions {
    fn label(&self, c: u32) -> String {
        self.labels
            .get(c as usize)
            .filter(|s| !s.is_empty())
            .cloned()
            .unwrap_or_else(|| format!("c{c}"))
    }

    fn selected_edges(&self, cg: &CategoryGraph) -> Vec<CategoryEdge> {
        let mut e: Vec<CategoryEdge> = cg
            .edges_by_weight()
            .into_iter()
            .filter(|e| e.weight >= self.min_weight)
            .collect();
        if self.top_k > 0 {
            e.truncate(self.top_k);
        }
        e
    }

    fn node_ids(&self, cg: &CategoryGraph) -> Vec<u32> {
        (0..cg.num_categories() as u32)
            .filter(|&c| !self.skip_empty || cg.size(c) > 0.0)
            .collect()
    }
}

fn escape_dot(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn escape_xml(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a Graphviz DOT graph: one node per category (sized label), one
/// weighted edge per selected cut, `penwidth` scaled by relative weight.
pub fn to_dot(cg: &CategoryGraph, opts: &ExportOptions) -> String {
    let edges = opts.selected_edges(cg);
    let wmax = edges
        .first()
        .map(|e| e.weight)
        .unwrap_or(1.0)
        .max(f64::MIN_POSITIVE);
    let mut s = String::new();
    s.push_str("graph category_graph {\n  layout=neato;\n  node [shape=circle];\n");
    for c in opts.node_ids(cg) {
        let _ = writeln!(
            s,
            "  n{c} [label=\"{}\\n{:.0}\"];",
            escape_dot(&opts.label(c)),
            cg.size(c)
        );
    }
    for e in &edges {
        let _ = writeln!(
            s,
            "  n{} -- n{} [weight={:.6e}, penwidth={:.2}];",
            e.a,
            e.b,
            e.weight,
            0.5 + 4.5 * e.weight / wmax
        );
    }
    s.push_str("}\n");
    s
}

/// Renders the geosocialmap-style JSON document:
/// `{ "nodes": [{id, label, size}], "edges": [{source, target, weight, cut}] }`.
pub fn to_json(cg: &CategoryGraph, opts: &ExportOptions) -> String {
    let mut s = String::from("{\n  \"nodes\": [\n");
    let ids = opts.node_ids(cg);
    for (i, &c) in ids.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"id\": {c}, \"label\": \"{}\", \"size\": {}}}",
            escape_json(&opts.label(c)),
            cg.size(c)
        );
        s.push_str(if i + 1 < ids.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n  \"edges\": [\n");
    let edges = opts.selected_edges(cg);
    for (i, e) in edges.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"source\": {}, \"target\": {}, \"weight\": {:e}, \"cut\": {}}}",
            e.a, e.b, e.weight, e.edge_count
        );
        s.push_str(if i + 1 < edges.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Renders GraphML with `size` node attributes and `weight`/`cut` edge
/// attributes, importable by Gephi/Cytoscape.
pub fn to_graphml(cg: &CategoryGraph, opts: &ExportOptions) -> String {
    let mut s = String::from(
        "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n\
         <graphml xmlns=\"http://graphml.graphdrawing.org/xmlns\">\n\
         <key id=\"label\" for=\"node\" attr.name=\"label\" attr.type=\"string\"/>\n\
         <key id=\"size\" for=\"node\" attr.name=\"size\" attr.type=\"double\"/>\n\
         <key id=\"weight\" for=\"edge\" attr.name=\"weight\" attr.type=\"double\"/>\n\
         <key id=\"cut\" for=\"edge\" attr.name=\"cut\" attr.type=\"long\"/>\n\
         <graph edgedefault=\"undirected\">\n",
    );
    for c in opts.node_ids(cg) {
        let _ = writeln!(
            s,
            "<node id=\"n{c}\"><data key=\"label\">{}</data><data key=\"size\">{}</data></node>",
            escape_xml(&opts.label(c)),
            cg.size(c)
        );
    }
    for (i, e) in opts.selected_edges(cg).iter().enumerate() {
        let _ = writeln!(
            s,
            "<edge id=\"e{i}\" source=\"n{}\" target=\"n{}\">\
             <data key=\"weight\">{:e}</data><data key=\"cut\">{}</data></edge>",
            e.a, e.b, e.weight, e.edge_count
        );
    }
    s.push_str("</graph>\n</graphml>\n");
    s
}

/// Renders `source,target,weight,cut` CSV rows (header included), sorted by
/// descending weight.
pub fn to_csv_edges(cg: &CategoryGraph, opts: &ExportOptions) -> String {
    let mut s = String::from("source,target,weight,cut\n");
    for e in opts.selected_edges(cg) {
        let _ = writeln!(
            s,
            "{},{},{:e},{}",
            escape_json(&opts.label(e.a)).replace(',', ";"),
            escape_json(&opts.label(e.b)).replace(',', ";"),
            e.weight,
            e.edge_count
        );
    }
    s
}

/// A human-readable "strongest links" report — the textual analogue of the
/// Fig. 7 maps (e.g. "the third strongest link for Greece…", §7.3.1).
pub fn top_edges_report(cg: &CategoryGraph, opts: &ExportOptions, k: usize) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "top {k} category links by w(A,B):");
    for (i, e) in opts.selected_edges(cg).iter().take(k).enumerate() {
        let _ = writeln!(
            s,
            "{:>3}. {} -- {}  w={:.3e}  (|E_AB|≈{}, |A|≈{:.0}, |B|≈{:.0})",
            i + 1,
            opts.label(e.a),
            opts.label(e.b),
            e.weight,
            e.edge_count,
            cg.size(e.a),
            cg.size(e.b)
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgte_graph::{CategoryGraph, GraphBuilder, Partition};

    fn sample_cg() -> CategoryGraph {
        // Three categories; two edges with different weights.
        let g = GraphBuilder::from_edges(6, [(0, 2), (0, 3), (1, 2), (1, 3), (0, 4)]).unwrap();
        let p = Partition::from_assignments(vec![0, 0, 1, 1, 2, 2], 3).unwrap();
        CategoryGraph::exact(&g, &p)
    }

    #[test]
    fn dot_contains_nodes_and_edges() {
        let cg = sample_cg();
        let opts = ExportOptions {
            labels: vec!["US".into(), "CA".into()],
            ..Default::default()
        };
        let dot = to_dot(&cg, &opts);
        assert!(dot.starts_with("graph category_graph {"));
        assert!(dot.contains("n0 [label=\"US"));
        assert!(dot.contains("n2 [label=\"c2")); // fallback label
        assert!(dot.contains("n0 -- n1"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_escapes_quotes() {
        let cg = sample_cg();
        let opts = ExportOptions {
            labels: vec!["Athens \"GA\"".into()],
            ..Default::default()
        };
        assert!(to_dot(&cg, &opts).contains("Athens \\\"GA\\\""));
    }

    #[test]
    fn json_structure_and_escaping() {
        let cg = sample_cg();
        let opts = ExportOptions {
            labels: vec!["line\nbreak".into()],
            ..Default::default()
        };
        let j = to_json(&cg, &opts);
        assert!(j.contains("\"nodes\""));
        assert!(j.contains("\"edges\""));
        assert!(j.contains("line\\nbreak"));
        assert!(j.contains("\"source\": 0"));
        // Edge order: heaviest first (weight 1.0 for pair (0,1)).
        let first_edge = j.split("\"edges\"").nth(1).unwrap();
        assert!(first_edge.contains("\"target\": 1"));
    }

    #[test]
    fn graphml_is_well_formed_enough() {
        let cg = sample_cg();
        let opts = ExportOptions {
            labels: vec!["a<b>&\"".into()],
            ..Default::default()
        };
        let x = to_graphml(&cg, &opts);
        assert!(x.starts_with("<?xml"));
        assert!(x.contains("a&lt;b&gt;&amp;&quot;"));
        assert!(x.contains("<edge id=\"e0\""));
        assert!(x.ends_with("</graphml>\n"));
    }

    #[test]
    fn csv_sorted_by_weight() {
        let cg = sample_cg();
        let csv = to_csv_edges(&cg, &ExportOptions::default());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "source,target,weight,cut");
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("c0,c1")); // heavier edge first
    }

    #[test]
    fn top_k_and_min_weight_filters() {
        let cg = sample_cg();
        let opts = ExportOptions {
            top_k: 1,
            ..Default::default()
        };
        assert_eq!(to_csv_edges(&cg, &opts).lines().count(), 2);
        let opts = ExportOptions {
            min_weight: 0.5,
            ..Default::default()
        };
        // Only the weight-1.0 edge survives.
        assert_eq!(to_csv_edges(&cg, &opts).lines().count(), 2);
    }

    #[test]
    fn report_lists_k_lines() {
        let cg = sample_cg();
        let r = top_edges_report(&cg, &ExportOptions::default(), 5);
        assert!(r.contains("top 5"));
        assert!(r.contains("1. c0 -- c1"));
        assert_eq!(r.lines().count(), 3); // header + 2 edges
    }

    #[test]
    fn skip_empty_categories() {
        use cgte_graph::CategoryMatrix;
        let mut w = CategoryMatrix::zeros(3);
        w.set(0, 1, 0.5);
        let cg = CategoryGraph::from_weights(vec![2.0, 3.0, 0.0], w);
        let opts = ExportOptions {
            skip_empty: true,
            ..Default::default()
        };
        let dot = to_dot(&cg, &opts);
        assert!(!dot.contains("n2 ["));
    }
}
