//! Offline stand-in for `criterion`: a minimal but real wall-clock
//! micro-benchmark harness.
//!
//! Implements the API subset the workspace's benches use — [`Criterion`],
//! [`Criterion::benchmark_group`], `bench_function` / `bench_with_input`,
//! [`Bencher::iter`], [`black_box`], [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Each benchmark is
//! warmed up briefly, then timed over an adaptive iteration count targeting
//! a fixed measurement window; mean time per iteration is printed to
//! stdout. No statistics beyond the mean, no HTML reports.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(300);
const MEASURE: Duration = Duration::from_millis(900);

/// Identifier for a parameterized benchmark, `name/parameter`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `name/parameter`.
    pub fn new<P: Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            full: format!("{name}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            full: s.to_string(),
        }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    iters_done: u64,
    total: Duration,
}

impl Bencher {
    /// Times `routine`, first warming up, then measuring over an adaptive
    /// iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: also yields a per-iteration estimate.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        // Measure in batches sized to roughly fill the measurement window.
        let batch = ((MEASURE.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);
        let start = Instant::now();
        for _ in 0..batch {
            black_box(routine());
        }
        self.total = start.elapsed();
        self.iters_done = batch;
    }

    fn report(&self) -> String {
        if self.iters_done == 0 {
            return "no measurement".to_string();
        }
        let per = self.total.as_secs_f64() / self.iters_done as f64;
        let (value, unit) = if per >= 1.0 {
            (per, "s")
        } else if per >= 1e-3 {
            (per * 1e3, "ms")
        } else if per >= 1e-6 {
            (per * 1e6, "µs")
        } else {
            (per * 1e9, "ns")
        };
        format!("{value:>10.3} {unit}/iter ({} iters)", self.iters_done)
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    let mut b = Bencher {
        iters_done: 0,
        total: Duration::ZERO,
    };
    f(&mut b);
    println!("bench  {label:<55} {}", b.report());
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _c: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Accepted for criterion compatibility; this harness sizes iteration
    /// counts adaptively instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for criterion compatibility; no-op.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_bench(&format!("{}/{}", self.name, id.full), f);
        self
    }

    /// Runs one benchmark that borrows a prepared input.
    pub fn bench_with_input<T, F>(&mut self, id: BenchmarkId, input: &T, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &T),
    {
        run_bench(&format!("{}/{}", self.name, id.full), |b| f(b, input));
        self
    }

    /// Ends the group (printing is immediate; nothing to flush).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for criterion compatibility; CLI flags are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _c: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, f);
        self
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generates `main` for a set of [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            iters_done: 0,
            total: Duration::ZERO,
        };
        b.iter(|| black_box(3u64).wrapping_mul(7));
        assert!(b.iters_done > 0);
        assert!(b.total > Duration::ZERO);
        assert!(b.report().contains("/iter"));
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_function("f", |b| b.iter(|| black_box(1 + 1)));
        g.bench_with_input(BenchmarkId::new("with", 3), &3, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }
}
