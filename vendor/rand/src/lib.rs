//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no registry access, so this workspace vendors
//! the exact slice of `rand` it consumes: [`Rng`] with `gen`/`gen_range`,
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], the
//! [`seq::SliceRandom`] shuffle/choose helpers, and [`seq::index::sample`].
//! The generator is xoshiro256** seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), which is fine because every
//! consumer in this workspace treats the stream as an opaque deterministic
//! source.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution of the
/// real crate, collapsed to the types this workspace draws).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws uniformly from `[0, bound)` by 128-bit multiply-shift.
///
/// The modulo bias is `bound / 2^64` — immaterial for every statistical
/// tolerance in this workspace.
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + bounded_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo + bounded_u64(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_signed_range!(i32 as u32, i64 as u64, isize as usize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::standard_sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        // Scale by 2^53/(2^53 - 1) so the upper endpoint is attainable.
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + u * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::standard_sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// The user-facing random value API (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// A value from the "standard" distribution of `T` (uniform over the
    /// type's natural unit domain).
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// A value uniformly distributed over `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1], got {p}");
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it with SplitMix64
    /// (the expansion recommended by the xoshiro authors).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generator types.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    ///
    /// Not the ChaCha12 generator of upstream `rand`; all consumers here
    /// only require a deterministic, statistically solid stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state is the one invalid xoshiro state; SplitMix64
            // cannot produce four consecutive zeros, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl StdRng {
        /// The raw xoshiro256** state, for checkpointing: a generator
        /// rebuilt with [`StdRng::from_state`] continues the exact same
        /// stream (session snapshot/restore relies on this being
        /// bit-exact).
        #[inline]
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a previously captured state. The
        /// all-zero state is the one invalid xoshiro state (it is a fixed
        /// point); it is replaced by the same guard constant
        /// `seed_from_u64` uses, so hostile input cannot wedge the stream.
        #[inline]
        pub fn from_state(mut s: [u64; 4]) -> Self {
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            r
        }
    }
}

pub mod seq {
    //! Sequence-related helpers (subset of `rand::seq`).

    use super::Rng;

    /// Extension methods on slices (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Uniformly chooses one element, or `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }

    pub mod index {
        //! Sampling of distinct indices (subset of `rand::seq::index`).

        use super::super::Rng;

        /// Result of [`sample`]: distinct indices in `0..length`.
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// The sampled indices as a plain vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }

            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether no indices were sampled.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;
            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Uniformly samples `amount` distinct indices from `0..length`
        /// via a partial Fisher–Yates shuffle.
        ///
        /// # Panics
        /// Panics if `amount > length`.
        pub fn sample<R: Rng + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} distinct indices from 0..{length}"
            );
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..length);
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&y));
            let z = rng.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&z));
        }
    }

    #[test]
    fn gen_range_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let mut counts = [0usize; 10];
        for _ in 0..n {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            let f = c as f64 / n as f64;
            assert!((f - 0.1).abs() < 0.01, "bucket frequency {f}");
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left order intact");
    }

    #[test]
    fn choose_covers_support() {
        let mut rng = StdRng::seed_from_u64(11);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[*v.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn index_sample_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(12);
        let idx = super::seq::index::sample(&mut rng, 30, 10).into_vec();
        assert_eq!(idx.len(), 10);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10, "indices not distinct");
        assert!(idx.iter().all(|&i| i < 30));
    }
}
