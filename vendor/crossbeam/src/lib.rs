//! Offline stand-in for `crossbeam`: only [`scope`], implemented on top of
//! `std::thread::scope` (available since Rust 1.63, which postdates the
//! original crossbeam scoped-thread API this mirrors).

#![forbid(unsafe_code)]

use std::any::Any;

/// A scope handle passed to [`scope`] closures; mirrors
/// `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Handle to a spawned scoped thread; mirrors
/// `crossbeam::thread::ScopedJoinHandle`.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread to finish, returning its result or the panic
    /// payload.
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope handle, like
    /// crossbeam's API (most callers ignore it with `|_|`).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Creates a scope in which threads borrowing non-`'static` data can be
/// spawned; all spawned threads are joined before this returns.
///
/// Unlike crossbeam, unjoined-thread panics propagate out of the enclosing
/// `std::thread::scope` as panics rather than surfacing in the returned
/// `Result`; callers that explicitly `join` every handle (as this workspace
/// does) observe identical behavior.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

pub mod channel {
    //! Multi-producer multi-consumer FIFO channels (subset of
    //! `crossbeam::channel`): [`unbounded`] with blocking [`Receiver::recv`]
    //! and non-blocking [`Receiver::try_recv`], implemented over
    //! `Mutex<VecDeque>` + `Condvar`. Disconnection follows crossbeam's
    //! semantics: `recv` drains remaining messages before reporting
    //! [`RecvError`]; `send` fails only once every receiver is gone.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// The sending half of a channel; clonable across threads.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel; clonable across threads (each
    /// message is delivered to exactly one receiver).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone; the
    /// unsent message is handed back.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message available right now, but senders still exist.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues a message, waking one waiting receiver.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self.shared.queue.lock().expect("channel poisoned");
            if q.receivers == 0 {
                return Err(SendError(value));
            }
            q.items.push_back(value);
            drop(q);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().expect("channel poisoned").senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut q = self.shared.queue.lock().expect("channel poisoned");
            q.senders -= 1;
            if q.senders == 0 {
                drop(q);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().expect("channel poisoned");
            loop {
                if let Some(v) = q.items.pop_front() {
                    return Ok(v);
                }
                if q.senders == 0 {
                    return Err(RecvError);
                }
                q = self.shared.ready.wait(q).expect("channel poisoned");
            }
        }

        /// Returns a message if one is immediately available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue.lock().expect("channel poisoned");
            match q.items.pop_front() {
                Some(v) => Ok(v),
                None if q.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Drains the channel into an iterator that ends once the channel
        /// is empty and disconnected.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .expect("channel poisoned")
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared
                .queue
                .lock()
                .expect("channel poisoned")
                .receivers -= 1;
        }
    }

    /// Blocking iterator over received messages; see [`Receiver::iter`].
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_roundtrip_fifo() {
        let (tx, rx) = channel::unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }

    #[test]
    fn channel_drains_before_disconnect() {
        let (tx, rx) = channel::unbounded();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }

    #[test]
    fn channel_multi_consumer_partitions_work() {
        let (tx, rx) = channel::unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: i64 = scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    s.spawn(move |_| {
                        let mut sum = 0i64;
                        while let Ok(v) = rx.recv() {
                            sum += v;
                        }
                        sum
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, (0..100).sum::<i64>());
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = channel::unbounded();
        drop(rx);
        assert_eq!(tx.send(5), Err(channel::SendError(5)));
    }

    #[test]
    fn spawn_and_join_collects_results() {
        let data = [1, 2, 3, 4];
        let total: i32 = scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn borrows_stack_data() {
        let mut acc = vec![0usize; 4];
        scope(|s| {
            let handles: Vec<_> = (0..4).map(|i| s.spawn(move |_| i * i)).collect();
            for (i, h) in handles.into_iter().enumerate() {
                acc[i] = h.join().unwrap();
            }
        })
        .unwrap();
        assert_eq!(acc, vec![0, 1, 4, 9]);
    }

    #[test]
    fn join_reports_panic() {
        scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            assert!(h.join().is_err());
        })
        .unwrap();
    }
}
