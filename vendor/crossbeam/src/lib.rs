//! Offline stand-in for `crossbeam`: only [`scope`], implemented on top of
//! `std::thread::scope` (available since Rust 1.63, which postdates the
//! original crossbeam scoped-thread API this mirrors).

#![forbid(unsafe_code)]

use std::any::Any;

/// A scope handle passed to [`scope`] closures; mirrors
/// `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Handle to a spawned scoped thread; mirrors
/// `crossbeam::thread::ScopedJoinHandle`.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread to finish, returning its result or the panic
    /// payload.
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope handle, like
    /// crossbeam's API (most callers ignore it with `|_|`).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Creates a scope in which threads borrowing non-`'static` data can be
/// spawned; all spawned threads are joined before this returns.
///
/// Unlike crossbeam, unjoined-thread panics propagate out of the enclosing
/// `std::thread::scope` as panics rather than surfacing in the returned
/// `Result`; callers that explicitly `join` every handle (as this workspace
/// does) observe identical behavior.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_and_join_collects_results() {
        let data = [1, 2, 3, 4];
        let total: i32 = scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn borrows_stack_data() {
        let mut acc = vec![0usize; 4];
        scope(|s| {
            let handles: Vec<_> = (0..4).map(|i| s.spawn(move |_| i * i)).collect();
            for (i, h) in handles.into_iter().enumerate() {
                acc[i] = h.join().unwrap();
            }
        })
        .unwrap();
        assert_eq!(acc, vec![0, 1, 4, 9]);
    }

    #[test]
    fn join_reports_panic() {
        scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            assert!(h.join().is_err());
        })
        .unwrap();
    }
}
