//! Offline stand-in for `proptest`: randomized property testing without
//! shrinking.
//!
//! Implements the slice of the proptest API this workspace uses:
//! [`Strategy`] with `prop_map` / `prop_flat_map`, range and tuple
//! strategies, [`Just`], [`any`], [`collection::vec`], and the
//! [`proptest!`] / `prop_assert*` / [`prop_assume!`] macros. Each property
//! runs [`NUM_CASES`] deterministic cases (seeded per case index); a failing
//! case panics with its case number so it can be replayed, but no input
//! shrinking is attempted.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::ops::{Range, RangeInclusive};

/// Number of random cases each `proptest!` property runs.
pub const NUM_CASES: u32 = 64;

/// The per-test random source. A thin wrapper so strategy implementations
/// do not depend on the RNG type directly.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic RNG for one test case.
    pub fn for_case(test_name: &str, case: u32) -> TestRng {
        // Stable FNV-1a over the test name keeps streams distinct per test.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h ^ (u64::from(case) << 32) ^ 0x5EED))
    }

    /// Access to the underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// A generator of arbitrary values (no shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds from
    /// it — dependent generation.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Filters generated values; generation retries until `f` passes
    /// (bounded, then panics — keep predicates permissive).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive values: {}",
            self.whence
        );
    }
}

/// A strategy producing one fixed (cloned) value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a natural full-domain strategy (subset of proptest's
/// `Arbitrary`).
pub trait ArbitraryValue {
    /// Generates a value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.rng().gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        use rand::Rng;
        rng.rng().gen::<bool>()
    }
}

/// Strategy over the full domain of `T` (proptest's `any::<T>()`).
pub struct Any<T>(std::marker::PhantomData<T>);

/// Creates an [`Any`] strategy for `T`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u32, u64, usize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $S:ident),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 S0)
    (0 S0, 1 S1)
    (0 S0, 1 S1, 2 S2)
    (0 S0, 1 S1, 2 S2, 3 S3)
    (0 S0, 1 S1, 2 S2, 3 S3, 4 S4)
}

pub mod collection {
    //! Collection strategies (subset of `proptest::collection`).

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`]: an exact length or a half-open
    /// range (proptest's `SizeRange` conversions).
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    /// Strategy for `Vec<T>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is uniform in `len`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            use rand::Rng;
            let n = rng.rng().gen_range(self.len.0.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Common imports, mirroring `proptest::prelude`.
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{Just, Strategy};
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Skips the current case when its inputs do not satisfy a precondition.
/// Expands to an early return from the per-case closure.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running [`NUM_CASES`] random cases.
#[macro_export]
macro_rules! proptest {
    ($(
        #[$meta:meta]
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[$meta]
        fn $name() {
            for __case in 0..$crate::NUM_CASES {
                let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                let __run = |__rng: &mut $crate::TestRng| {
                    $(let $arg = $crate::Strategy::generate(&$strat, __rng);)+
                    $body
                };
                let __outcome = std::panic::catch_unwind(
                    std::panic::AssertUnwindSafe(|| __run(&mut __rng)),
                );
                if let Err(payload) = __outcome {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed (replay: seed derived from name+case)",
                        __case,
                        $crate::NUM_CASES,
                        stringify!($name),
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_even() -> impl Strategy<Value = usize> {
        (0usize..50).prop_map(|x| x * 2)
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 0.0f64..=1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.0..=1.0).contains(&y));
        }

        #[test]
        fn map_and_flat_map_compose(v in small_even().prop_flat_map(|n| {
            crate::collection::vec(0usize..(n + 1), 0..10)
        })) {
            prop_assert!(v.len() < 10);
        }

        #[test]
        fn tuples_and_just(t in (Just(7usize), 0u32..4)) {
            prop_assert_eq!(t.0, 7);
            prop_assert!(t.1 < 4);
        }

        #[test]
        fn assume_skips(x in 0usize..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::TestRng::for_case("t", 1);
        let mut b = crate::TestRng::for_case("t", 1);
        use rand::Rng;
        assert_eq!(a.rng().gen::<u64>(), b.rng().gen::<u64>());
    }
}
