//! End-to-end pipeline tests spanning every crate: generate → write →
//! read → sample → observe → estimate → export.

use cgte::datasets::{read_categories, read_edgelist, write_categories, write_edgelist};
use cgte::estimators::{CategoryGraphEstimator, Design, SizeMethod, StarSizeOptions};
use cgte::graph::generators::{planted_partition, PlantedConfig};
use cgte::graph::CategoryGraph;
use cgte::sampling::{NodeSampler, RandomWalk, StarSample, UniformIndependence};
use cgte::viz::{to_dot, to_graphml, to_json, ExportOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Cursor;

#[test]
fn full_pipeline_round_trip() {
    let mut rng = StdRng::seed_from_u64(10);
    let cfg = PlantedConfig {
        category_sizes: vec![60, 120, 240],
        k: 6,
        alpha: 0.3,
    };
    let pg = planted_partition(&cfg, &mut rng).unwrap();

    // Serialize and re-load the dataset through the text formats.
    let mut graph_buf = Vec::new();
    write_edgelist(&pg.graph, &mut graph_buf).unwrap();
    let mut cat_buf = Vec::new();
    write_categories(&pg.partition, &mut cat_buf).unwrap();
    let g = read_edgelist(Cursor::new(graph_buf)).unwrap();
    let p = read_categories(Cursor::new(cat_buf), g.num_nodes()).unwrap();
    assert_eq!(g, pg.graph);
    assert_eq!(p, pg.partition);

    // Crawl and estimate.
    let rw = RandomWalk::new().burn_in(300);
    let nodes = rw.sample(&g, 3000, &mut rng);
    let star = StarSample::observe_sampler(&g, &p, &nodes, &rw);
    let est = CategoryGraphEstimator::new(Design::Weighted)
        .size_method(SizeMethod::Star(StarSizeOptions::default()))
        .estimate_star(&star, g.num_nodes() as f64);

    // Estimates should be in the right ballpark.
    let exact = CategoryGraph::exact(&g, &p);
    for c in 0..3u32 {
        let t = exact.size(c);
        let e = est.size(c);
        assert!((e - t).abs() / t < 0.3, "category {c}: {e} vs {t}");
    }
    for a in 0..3u32 {
        for b in (a + 1)..3u32 {
            let t = exact.weight(a, b);
            let e = est.weight(a, b);
            assert!((e - t).abs() / t < 0.4, "edge ({a},{b}): {e} vs {t}");
        }
    }

    // Exports must mention every category and be non-trivial.
    let opts = ExportOptions::default();
    let dot = to_dot(&est, &opts);
    let json = to_json(&est, &opts);
    let xml = to_graphml(&est, &opts);
    for c in 0..3 {
        assert!(dot.contains(&format!("n{c} [")), "dot missing node {c}");
        assert!(
            json.contains(&format!("\"id\": {c}")),
            "json missing node {c}"
        );
        assert!(
            xml.contains(&format!("<node id=\"n{c}\"")),
            "graphml missing node {c}"
        );
    }
    assert!(dot.contains(" -- "), "dot has no edges");
}

#[test]
fn uniform_design_equals_unit_weight_sample() {
    // Design::Uniform on a weighted observation must equal Design::Weighted
    // on the same draw observed with unit weights — the §4 formulas are the
    // §5 formulas with w ≡ 1.
    let mut rng = StdRng::seed_from_u64(11);
    let cfg = PlantedConfig {
        category_sizes: vec![80, 160],
        k: 6,
        alpha: 0.5,
    };
    let pg = planted_partition(&cfg, &mut rng).unwrap();
    let rw = RandomWalk::new();
    let nodes = rw.sample(&pg.graph, 800, &mut rng);
    let weighted = StarSample::observe_sampler(&pg.graph, &pg.partition, &nodes, &rw);
    let unit = StarSample::observe(&pg.graph, &pg.partition, &nodes);
    let n = pg.graph.num_nodes() as f64;
    let a = CategoryGraphEstimator::new(Design::Uniform).estimate_star(&weighted, n);
    let b = CategoryGraphEstimator::new(Design::Weighted).estimate_star(&unit, n);
    for c in 0..2u32 {
        assert!((a.size(c) - b.size(c)).abs() < 1e-9);
    }
    assert!((a.weight(0, 1) - b.weight(0, 1)).abs() < 1e-12);
}

#[test]
fn multiwalk_combination_improves_estimates() {
    use cgte::sampling::run_walks;
    let mut rng = StdRng::seed_from_u64(12);
    let cfg = PlantedConfig {
        category_sizes: vec![100, 400],
        k: 8,
        alpha: 0.4,
    };
    let pg = planted_partition(&cfg, &mut rng).unwrap();
    let rw = RandomWalk::new().burn_in(200);
    let mw = run_walks(&rw, &pg.graph, 10, 400, &mut rng);
    let n = pg.graph.num_nodes() as f64;

    // Per-walk estimates scatter around the truth; the combined sample's
    // estimate should have error no worse than the median per-walk error.
    let estimate = |nodes: &[u32]| {
        let star = StarSample::observe_sampler(&pg.graph, &pg.partition, nodes, &rw);
        CategoryGraphEstimator::new(Design::Weighted)
            .estimate_star(&star, n)
            .size(0)
    };
    let mut walk_errors: Vec<f64> = (0..mw.num_walks())
        .map(|i| (estimate(mw.walk(i)) - 100.0).abs())
        .collect();
    walk_errors.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let combined_error = (estimate(&mw.combined()) - 100.0).abs();
    let median_err = walk_errors[walk_errors.len() / 2];
    assert!(
        combined_error <= median_err + 1e-9,
        "combined {combined_error} vs median per-walk {median_err}"
    );
}

#[test]
fn population_estimate_feeds_size_estimator() {
    // §4.3: when N is unknown, estimate it from collisions and plug it in.
    use cgte::estimators::category_size::{induced_size, Records as _};
    use cgte::estimators::population::population_size_uniform;
    use cgte::sampling::InducedSample;
    let mut rng = StdRng::seed_from_u64(13);
    let cfg = PlantedConfig {
        category_sizes: vec![200, 600],
        k: 6,
        alpha: 0.2,
    };
    let pg = planted_partition(&cfg, &mut rng).unwrap();
    let nodes = UniformIndependence.sample(&pg.graph, 1500, &mut rng);
    let n_hat = population_size_uniform(&nodes).expect("collisions at this size");
    assert!((n_hat - 800.0).abs() / 800.0 < 0.25, "N̂ = {n_hat}");
    let s = InducedSample::observe(&pg.graph, &pg.partition, &nodes);
    assert_eq!(s.rec_num_categories(), 2);
    let est = induced_size(&s, 0, n_hat).unwrap();
    assert!(
        (est - 200.0).abs() / 200.0 < 0.3,
        "|Â| = {est} using N̂ = {n_hat}"
    );
}
