//! E9: empirical consistency of all estimator families (paper appendix).
//!
//! Every estimator must converge to the truth as |S| grows; on independent
//! samples the error should shrink roughly like 1/sqrt(|S|). These tests
//! check both, spanning cgte-graph, cgte-sampling, cgte-core and cgte-eval.

use cgte::estimators::Design;
use cgte::eval::{run_experiment, EstimatorKind, ExperimentConfig, Target, ALL_ESTIMATORS};
use cgte::graph::generators::{planted_partition, PlantedConfig, PlantedGraph};
use cgte::graph::CategoryGraph;
use cgte::sampling::{AnySampler, MetropolisHastingsWalk, RandomWalk, UniformIndependence};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn test_graph(seed: u64) -> PlantedGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = PlantedConfig {
        category_sizes: vec![80, 160, 320, 640],
        k: 8,
        alpha: 0.4,
    };
    planted_partition(&cfg, &mut rng).expect("feasible config")
}

fn targets(pg: &PlantedGraph) -> Vec<Target> {
    let exact = CategoryGraph::exact(&pg.graph, &pg.partition);
    let e = exact.weight_quantile_edge(0.75).expect("has edges");
    vec![Target::Size(3), Target::Size(0), Target::Weight(e.a, e.b)]
}

fn assert_consistent(sampler: AnySampler, design: Design, seed: u64) {
    let pg = test_graph(seed);
    let tg = targets(&pg);
    let sizes = vec![150, 1200, 9600]; // 8x steps => expect ~sqrt(8) ≈ 2.8x drops
    let cfg = ExperimentConfig::new(sizes, 40).seed(seed).design(design);
    let res = run_experiment(&pg.graph, &pg.partition, &sampler, &tg, &cfg);
    for kind in ALL_ESTIMATORS {
        for &t in &tg {
            if !kind.applies_to(t) {
                continue;
            }
            let s = res.nrmse(kind, t).unwrap();
            // Monotone-ish decrease end to end, and a final error that is
            // small in absolute terms.
            assert!(
                s[2] < 0.6 * s[0],
                "{} {:?} on {t:?}: nrmse {s:?} did not shrink",
                kind.name(),
                sampler.name(),
            );
            assert!(
                s[2] < 0.5,
                "{} {:?} on {t:?}: final nrmse {} too large",
                kind.name(),
                sampler.name(),
                s[2]
            );
        }
    }
}

#[test]
fn uis_estimators_are_consistent() {
    assert_consistent(AnySampler::Uis(UniformIndependence), Design::Uniform, 1);
}

#[test]
fn rw_estimators_are_consistent() {
    assert_consistent(
        AnySampler::Rw(RandomWalk::new().burn_in(1000)),
        Design::Weighted,
        2,
    );
}

#[test]
fn mhrw_estimators_are_consistent() {
    assert_consistent(
        AnySampler::Mhrw(MetropolisHastingsWalk::new().burn_in(1000)),
        Design::Uniform,
        3,
    );
}

#[test]
fn uis_error_rate_is_about_root_n() {
    // Under independence sampling the variance-driven NRMSE should scale
    // ~ n^(-1/2): over a 64x size increase, expect close to an 8x drop
    // (allow 4x-16x for noise).
    let pg = test_graph(4);
    let tg = [Target::Size(3)];
    let cfg = ExperimentConfig::new(vec![150, 9600], 120)
        .seed(4)
        .design(Design::Uniform);
    let res = run_experiment(
        &pg.graph,
        &pg.partition,
        &AnySampler::Uis(UniformIndependence),
        &tg,
        &cfg,
    );
    for kind in [EstimatorKind::InducedSize, EstimatorKind::StarSize] {
        let s = res.nrmse(kind, tg[0]).unwrap();
        let ratio = s[0] / s[2.min(s.len() - 1)];
        assert!(
            (4.0..16.0).contains(&ratio),
            "{}: ratio {ratio} not ~ sqrt(64)=8 (nrmse {s:?})",
            kind.name()
        );
    }
}

#[test]
fn star_weight_estimator_beats_induced_consistently() {
    // The paper's headline claim, as a cross-crate regression test.
    let pg = test_graph(5);
    let exact = CategoryGraph::exact(&pg.graph, &pg.partition);
    let e = exact.weight_quantile_edge(0.5).expect("has edges");
    let t = Target::Weight(e.a, e.b);
    let cfg = ExperimentConfig::new(vec![300, 2400], 60)
        .seed(5)
        .design(Design::Uniform);
    let res = run_experiment(
        &pg.graph,
        &pg.partition,
        &AnySampler::Uis(UniformIndependence),
        &[t],
        &cfg,
    );
    let ind = res.nrmse(EstimatorKind::InducedWeight, t).unwrap();
    let star = res.nrmse(EstimatorKind::StarWeight, t).unwrap();
    for i in 0..ind.len() {
        assert!(
            star[i] < ind[i],
            "at size index {i}: star {} >= induced {}",
            star[i],
            ind[i]
        );
    }
}
