//! Property-based tests on the core data structures and estimator
//! invariants, spanning all crates.

use cgte::estimators::category_size::{
    induced_size, induced_sizes, induced_sizes_acc, star_sizes, star_sizes_acc, StarSizeOptions,
};
use cgte::estimators::edge_weight::{
    induced_weight, induced_weights_acc, induced_weights_all, star_weights_acc, star_weights_all,
};
use cgte::estimators::hansen_hurwitz::reweighted_size;
use cgte::graph::{CategoryGraph, Graph, GraphBuilder, NodeId, Partition};
use cgte::sampling::{
    AliasTable, InducedAccumulator, InducedSample, ObservationContext, StarAccumulator, StarSample,
};
use proptest::prelude::*;

/// An arbitrary simple graph as (node count, raw edge list with possible
/// self-loops/duplicates that the builder must clean up).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..40).prop_flat_map(|n| {
        proptest::collection::vec((0..n as NodeId, 0..n as NodeId), 0..120).prop_map(move |pairs| {
            let mut b = GraphBuilder::new(n);
            for (u, v) in pairs {
                if u != v {
                    b.add_edge(u, v).expect("in range");
                }
            }
            b.build()
        })
    })
}

/// A graph together with a covering partition and a nonempty node sample.
fn arb_observed() -> impl Strategy<Value = (Graph, Partition, Vec<NodeId>)> {
    arb_graph().prop_flat_map(|g| {
        let n = g.num_nodes();
        let cats = proptest::collection::vec(0u32..4, n);
        let sample = proptest::collection::vec(0..n as NodeId, 1..60);
        (Just(g), cats, sample).prop_map(|(g, cats, sample)| {
            let p = Partition::from_assignments(cats, 4).expect("in range");
            (g, p, sample)
        })
    })
}

proptest! {
    #[test]
    fn csr_graph_invariants(g in arb_graph()) {
        // Degree sum equals twice the edge count.
        let deg_sum: usize = (0..g.num_nodes()).map(|v| g.degree(v as NodeId)).sum();
        prop_assert_eq!(deg_sum, 2 * g.num_edges());
        // Adjacency is symmetric, sorted and self-loop-free.
        for v in 0..g.num_nodes() as NodeId {
            let nbrs = g.neighbors(v);
            for w in nbrs.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
            for &u in nbrs {
                prop_assert_ne!(u, v);
                prop_assert!(g.has_edge(u, v));
                prop_assert!(g.has_edge(v, u));
            }
        }
        // edges() yields each edge exactly once.
        prop_assert_eq!(g.edges().count(), g.num_edges());
    }

    #[test]
    fn category_graph_partitions_edges(
        (g, p, _) in arb_observed()
    ) {
        let cg = CategoryGraph::exact(&g, &p);
        let intra: u64 = (0..4).map(|c| cg.intra_edge_count(c)).sum();
        prop_assert_eq!(intra + cg.total_cut_edges(), g.num_edges() as u64);
        // Eq. (3) weights live in [0, 1] and are symmetric.
        for a in 0..4u32 {
            for b in (a + 1)..4 {
                let w = cg.weight(a, b);
                prop_assert!((0.0..=1.0).contains(&w));
                prop_assert_eq!(w, cg.weight(b, a));
                // Cut bounded by |A||B|.
                prop_assert!(
                    cg.edge_count_between(a, b) as f64 <= cg.size(a) * cg.size(b) + 1e-9
                );
            }
        }
    }

    #[test]
    fn label_permutation_preserves_sizes(
        (g, p, _) in arb_observed(),
        alpha in 0.0f64..=1.0,
        seed in any::<u64>()
    ) {
        let _ = g;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let q = p.permute_labels(alpha, &mut rng);
        prop_assert_eq!(q.sizes(), p.sizes());
        prop_assert_eq!(q.num_nodes(), p.num_nodes());
    }

    #[test]
    fn induced_sizes_sum_to_population(
        (g, p, sample) in arb_observed(),
        population in 1.0f64..1e6
    ) {
        // Eq. (4)/(11): estimated sizes always total exactly N.
        let s = InducedSample::observe(&g, &p, &sample);
        let sizes = induced_sizes(&s, population).expect("nonempty sample");
        let total: f64 = sizes.iter().sum();
        prop_assert!((total - population).abs() < 1e-6 * population.max(1.0));
        for (c, &v) in sizes.iter().enumerate() {
            prop_assert!(v >= 0.0);
            let single = induced_size(&s, c as u32, population).unwrap();
            prop_assert!((v - single).abs() < 1e-9);
        }
    }

    #[test]
    fn full_sample_estimates_are_exact(
        (g, p, _) in arb_observed()
    ) {
        // Observing every node once makes the uniform estimators exact.
        let all: Vec<NodeId> = (0..g.num_nodes() as NodeId).collect();
        let ind = InducedSample::observe(&g, &p, &all);
        let star = StarSample::observe(&g, &p, &all);
        let exact = CategoryGraph::exact(&g, &p);
        let n = g.num_nodes() as f64;
        let sizes = induced_sizes(&ind, n).unwrap();
        for c in 0..4u32 {
            prop_assert!((sizes[c as usize] - exact.size(c)).abs() < 1e-9);
        }
        for a in 0..4u32 {
            for b in (a + 1)..4 {
                if exact.size(a) > 0.0 && exact.size(b) > 0.0 {
                    let w = induced_weight(&ind, a, b).unwrap();
                    prop_assert!((w - exact.weight(a, b)).abs() < 1e-9,
                        "induced ({a},{b}): {} vs {}", w, exact.weight(a, b));
                }
            }
        }
        let true_sizes: Vec<f64> = (0..4u32).map(|c| exact.size(c)).collect();
        for (a, b, w) in star_weights_all(&star, &true_sizes).iter_nonzero() {
            prop_assert!((w - exact.weight(a, b)).abs() < 1e-9,
                "star ({a},{b}): {} vs {}", w, exact.weight(a, b));
        }
    }

    #[test]
    fn weight_scaling_cancels_in_estimators(
        (g, p, sample) in arb_observed(),
        scale in 0.01f64..100.0
    ) {
        // Multiplying all design weights by a constant must not change any
        // ratio estimator (§5.1).
        let w1 = vec![1.0; sample.len()];
        let w2 = vec![scale; sample.len()];
        let a = InducedSample::observe_with_weights(&g, &p, &sample, w1);
        let b = InducedSample::observe_with_weights(&g, &p, &sample, w2);
        let sa = induced_sizes(&a, 1000.0).unwrap();
        let sb = induced_sizes(&b, 1000.0).unwrap();
        for c in 0..4 {
            prop_assert!((sa[c] - sb[c]).abs() < 1e-6);
        }
        let wa = induced_weights_all(&a);
        let wb = induced_weights_all(&b);
        prop_assert_eq!(wa.num_categories(), wb.num_categories());
        prop_assert_eq!(wa.count_nonzero(), wb.count_nonzero());
        for (x, y, v) in wa.iter_upper() {
            prop_assert!((v - wb.get(x, y)).abs() < 1e-9);
        }
    }

    #[test]
    fn star_degree_consistency(
        (g, p, sample) in arb_observed()
    ) {
        // Each star record's neighbor histogram must total its degree, and
        // the induced view of the same draw is internally consistent.
        let star = StarSample::observe(&g, &p, &sample);
        for i in 0..star.len() {
            let total: u32 = star.neighbor_categories(i).iter().map(|&(_, c)| c).sum();
            prop_assert_eq!(total, star.degrees()[i]);
        }
        let ind = star.to_induced(&g, &p);
        prop_assert_eq!(ind.nodes(), star.nodes());
        for &(i, j) in ind.edges() {
            prop_assert!(g.has_edge(ind.nodes()[i as usize], ind.nodes()[j as usize]));
        }
    }

    #[test]
    fn incremental_accumulators_match_observe_exactly(
        (g, p, sample) in arb_observed(),
        weighted in any::<bool>()
    ) {
        // The tentpole invariant: pushing a sampled sequence into the
        // incremental accumulators and snapshotting at any prefix must be
        // BIT-IDENTICAL (==, not approximately equal) to from-scratch
        // observation + estimation of that prefix, for both designs.
        let weights: Vec<f64> = if weighted {
            // Positive, degree-dependent weights exercise the H-H paths.
            sample.iter().map(|&v| g.degree(v) as f64 + 1.0).collect()
        } else {
            vec![1.0; sample.len()]
        };
        let ctx = ObservationContext::new(&g, &p);
        let mut ind_acc = InducedAccumulator::new(4);
        let mut star_acc = StarAccumulator::new(4);
        let population = g.num_nodes() as f64;
        let opts_plugin = StarSizeOptions::default();
        let opts_model = StarSizeOptions { model_based_mean_degree: true };
        // Snapshot at every prefix length (the experiment snapshots at a
        // subset; every length is the stronger check).
        for i in 0..sample.len() {
            ind_acc.push(&ctx, sample[i], weights[i]);
            star_acc.push(&ctx, sample[i], weights[i]);
            let prefix = &sample[..=i];
            let wpfx = weights[..=i].to_vec();
            let ind = InducedSample::observe_with_weights(&g, &p, prefix, wpfx.clone());
            let star = StarSample::observe_with_weights(&g, &p, prefix, wpfx);
            prop_assert_eq!(
                induced_sizes(&ind, population),
                induced_sizes_acc(&ind_acc, population),
                "induced sizes diverged at prefix {}", i + 1
            );
            prop_assert_eq!(
                star_sizes(&star, population, &opts_plugin),
                star_sizes_acc(&star_acc, population, &opts_plugin),
                "star sizes (plug-in) diverged at prefix {}", i + 1
            );
            prop_assert_eq!(
                star_sizes(&star, population, &opts_model),
                star_sizes_acc(&star_acc, population, &opts_model),
                "star sizes (model) diverged at prefix {}", i + 1
            );
            prop_assert_eq!(
                induced_weights_all(&ind),
                induced_weights_acc(&ind_acc),
                "induced weights diverged at prefix {}", i + 1
            );
            let sizes: Vec<f64> = (0..4u32).map(|c| p.category_size(c) as f64).collect();
            prop_assert_eq!(
                star_weights_all(&star, &sizes),
                star_weights_acc(&star_acc, &sizes),
                "star weights diverged at prefix {}", i + 1
            );
        }
    }

    #[test]
    fn alias_table_respects_support(
        weights in proptest::collection::vec(0.0f64..10.0, 1..50),
        seed in any::<u64>()
    ) {
        use rand::SeedableRng;
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let t = AliasTable::new(&weights).expect("valid weights");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let i = t.sample(&mut rng);
            prop_assert!(i < weights.len());
            prop_assert!(weights[i] > 0.0, "sampled zero-weight index {i}");
        }
    }

    #[test]
    fn reweighted_size_bounds(
        weights in proptest::collection::vec(0.1f64..10.0, 0..50)
    ) {
        let rs = reweighted_size(&weights);
        prop_assert!(rs >= 0.0);
        // Bounded by n / min_w and n / max_w.
        if !weights.is_empty() {
            let n = weights.len() as f64;
            let min = weights.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = weights.iter().cloned().fold(0.0, f64::max);
            prop_assert!(rs <= n / min + 1e-9);
            prop_assert!(rs >= n / max - 1e-9);
        }
    }

    #[test]
    fn edgelist_round_trip(g in arb_graph()) {
        use cgte::datasets::{read_edgelist, write_edgelist};
        let mut buf = Vec::new();
        write_edgelist(&g, &mut buf).unwrap();
        let g2 = read_edgelist(std::io::Cursor::new(buf)).unwrap();
        // Ids may shrink if the last nodes are isolated; compare edges.
        let e1: Vec<_> = g.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        prop_assert_eq!(e1, e2);
    }

    #[test]
    fn nrmse_invariants(
        estimates in proptest::collection::vec(0.0f64..100.0, 1..30),
        truth in 0.1f64..100.0
    ) {
        use cgte::eval::nrmse;
        let r = nrmse(&estimates, truth).unwrap();
        prop_assert!(r >= 0.0);
        // Exactness iff all estimates equal the truth.
        if estimates.iter().all(|&e| (e - truth).abs() < 1e-12) {
            prop_assert!(r < 1e-9);
        }
        // Scale equivariance: scaling estimates and truth together is
        // invariant.
        let scaled: Vec<f64> = estimates.iter().map(|e| e * 3.0).collect();
        let r2 = nrmse(&scaled, truth * 3.0).unwrap();
        prop_assert!((r - r2).abs() < 1e-9);
    }
}
