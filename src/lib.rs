//! # cgte — Coarse-Grained Topology Estimation via Graph Sampling
//!
//! A Rust implementation of Kurant, Gjoka, Wang, Almquist, Butts &
//! Markopoulou, *Coarse-Grained Topology Estimation via Graph Sampling*.
//!
//! Many large online networks can only be measured through a probability
//! sample of nodes. This crate estimates the **category graph** — the
//! coarse-grained topology induced by a node partition (countries, colleges,
//! communities, …) — from such samples: category sizes `|A|` and
//! inter-category edge weights `w(A,B) = |E_AB| / (|A|·|B|)`.
//!
//! This facade crate re-exports the member crates of the workspace:
//!
//! | module | contents |
//! |--------|----------|
//! | [`graph`] | CSR graphs, partitions, exact category graphs, generators, communities, clustering |
//! | [`sampling`] | UIS/WIS/RW/MHRW/S-WRW samplers (+ BFS baseline), induced & star observation, convergence diagnostics |
//! | [`estimators`] | the paper's estimators (Eq. 4–16), population size, bootstrap, local properties |
//! | [`eval`] | NRMSE harness, experiment sweeps |
//! | [`datasets`] | edge-list IO, empirical stand-ins, Facebook-like simulator |
//! | [`viz`] | DOT/JSON/GraphML exporters and SVG plots for category graphs |
//! | [`scenarios`] | declarative `.scn` experiment scenarios, parallel job scheduler, shared graph cache |
//!
//! # Quickstart
//!
//! ```
//! use cgte::graph::generators::{planted_partition, PlantedConfig};
//! use cgte::sampling::{UniformIndependence, NodeSampler, StarSample};
//! use cgte::estimators::{CategoryGraphEstimator, Design};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! // A small planted-partition graph with known category structure.
//! let pg = planted_partition(&PlantedConfig::scaled(200, 5, 0.5), &mut rng).unwrap();
//!
//! // Sample 500 nodes uniformly, observing neighbor categories (star design).
//! let nodes = UniformIndependence.sample(&pg.graph, 500, &mut rng);
//! let star = StarSample::observe(&pg.graph, &pg.partition, &nodes);
//!
//! // Estimate the whole category graph.
//! let est = CategoryGraphEstimator::new(Design::Uniform)
//!     .estimate_star(&star, pg.graph.num_nodes() as f64);
//! assert_eq!(est.num_categories(), pg.partition.num_categories());
//! ```

pub use cgte_core as estimators;
pub use cgte_datasets as datasets;
pub use cgte_eval as eval;
pub use cgte_graph as graph;
pub use cgte_sampling as sampling;
pub use cgte_scenarios as scenarios;
pub use cgte_viz as viz;
