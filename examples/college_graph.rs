//! The paper's §7.3.3 workflow: a college-to-college friendship graph from
//! a stratified weighted random walk (S-WRW).
//!
//! ```sh
//! cargo run --release --example college_graph
//! ```
//!
//! Colleges cover only a few percent of the population, so a plain random
//! walk barely touches them (0–10 samples per college in the paper). This
//! example shows S-WRW's stratification fixing that, then estimates the
//! college category graph with star size estimation — the configuration
//! the paper found best for the 2010 data.

use cgte::datasets::{FacebookSim, FacebookSimConfig};
use cgte::estimators::{CategoryGraphEstimator, Design, SizeMethod, StarSizeOptions};
use cgte::sampling::{NodeSampler, RandomWalk, StarSample, Swrw};
use cgte::viz::{top_edges_report, ExportOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2010);
    let cfg = FacebookSimConfig {
        num_users: 20_000,
        num_regions: 60,
        num_countries: 10,
        num_colleges: 100,
        ..Default::default()
    };
    println!(
        "simulating a Facebook-like population ({} users)...",
        cfg.num_users
    );
    let sim = FacebookSim::generate(&cfg, &mut rng);
    let colleges = &sim.colleges;
    let n_colleges = cfg.num_colleges;
    let population = sim.graph.num_nodes() as f64;
    let sample_size = 6000;

    // Plain RW: colleges are ~3.5% of users, so few samples land in them.
    let rw = RandomWalk::new().burn_in(500);
    let rw_nodes = rw.sample(&sim.graph, sample_size, &mut rng);
    let rw_hits = rw_nodes
        .iter()
        .filter(|&&v| (colleges.category_of(v) as usize) < n_colleges)
        .count();

    // S-WRW stratified toward colleges (β = 0.5: strong boost for rare
    // categories without the β = 1 trapping; see ablation A3).
    let swrw = Swrw::stratified(&sim.graph, colleges, 0.5)
        .expect("college partition has volume")
        .burn_in(500);
    let sw_nodes = swrw.sample(&sim.graph, sample_size, &mut rng);
    let sw_hits = sw_nodes
        .iter()
        .filter(|&&v| (colleges.category_of(v) as usize) < n_colleges)
        .count();
    println!(
        "college samples out of {sample_size}: RW = {rw_hits} ({:.1}%), S-WRW = {sw_hits} ({:.1}%)",
        100.0 * rw_hits as f64 / sample_size as f64,
        100.0 * sw_hits as f64 / sample_size as f64,
    );

    // Estimate the college graph from the S-WRW sample with star sizes.
    let star = StarSample::observe_sampler(&sim.graph, colleges, &sw_nodes, &swrw);
    let est = CategoryGraphEstimator::new(Design::Weighted)
        .size_method(SizeMethod::Star(StarSizeOptions::default()))
        .estimate_star(&star, population);

    let mut labels: Vec<String> = (0..n_colleges).map(|c| format!("college-{c:02}")).collect();
    labels.push("no-college".into());
    let opts = ExportOptions {
        labels,
        min_weight: 0.0,
        ..Default::default()
    };
    println!("\n{}", top_edges_report(&est, &opts, 12));

    // How close are the size estimates for the five biggest colleges?
    println!("{:>12} {:>10} {:>10}", "college", "true |A|", "est |A|");
    for c in 0..5u32 {
        println!(
            "{:>12} {:>10} {:>10.1}",
            format!("college-{c:02}"),
            colleges.category_size(c),
            est.size(c)
        );
    }
}
