//! The paper's §7.3.1 workflow: estimate a country-to-country friendship
//! graph from crawls of a Facebook-like population, then export it.
//!
//! ```sh
//! cargo run --release --example country_graph
//! ```
//!
//! Mirrors the paper's recipe: merge regional networks into countries,
//! estimate category sizes with the induced (counting) estimator under
//! UIS, feed those sizes into the star edge-weight estimators, and average
//! the per-crawl estimates. Prints the strongest links and a DOT rendering.

use cgte::datasets::{FacebookSim, FacebookSimConfig};
use cgte::estimators::{CategoryGraphEstimator, Design, SizeMethod};
use cgte::sampling::{NodeSampler, RandomWalk, StarSample, UniformIndependence};
use cgte::viz::{to_dot, top_edges_report, ExportOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2009);
    let cfg = FacebookSimConfig {
        num_users: 20_000,
        num_regions: 60,
        num_countries: 10,
        num_colleges: 80,
        ..Default::default()
    };
    println!(
        "simulating a Facebook-like population ({} users)...",
        cfg.num_users
    );
    let sim = FacebookSim::generate(&cfg, &mut rng);
    let countries = sim.countries();
    let population = sim.graph.num_nodes() as f64;

    // Two independent crawls, as the paper combines multiple techniques.
    let uis_nodes = UniformIndependence.sample(&sim.graph, 4000, &mut rng);
    let uis_star = StarSample::observe(&sim.graph, &countries, &uis_nodes);
    let rw = RandomWalk::new().burn_in(500);
    let rw_nodes = rw.sample(&sim.graph, 4000, &mut rng);
    let rw_star = StarSample::observe_sampler(&sim.graph, &countries, &rw_nodes, &rw);

    // §7.3.1: induced sizes (UIS counting did best), star edge weights.
    let est_uis = CategoryGraphEstimator::new(Design::Uniform)
        .size_method(SizeMethod::Induced)
        .estimate_star(&uis_star, population);
    let est_rw = CategoryGraphEstimator::new(Design::Weighted)
        .size_method(SizeMethod::Induced)
        .estimate_star(&rw_star, population);

    // Average the two estimates edge-wise.
    let num_c = countries.num_categories();
    let sizes: Vec<f64> = (0..num_c as u32)
        .map(|c| (est_uis.size(c) + est_rw.size(c)) / 2.0)
        .collect();
    let mut weights = cgte::graph::CategoryMatrix::zeros(num_c);
    for e in est_uis.edges() {
        weights.add(e.a, e.b, e.weight / 2.0);
    }
    for e in est_rw.edges() {
        weights.add(e.a, e.b, e.weight / 2.0);
    }
    let avg = cgte::graph::CategoryGraph::from_weights(sizes, weights);

    let mut labels: Vec<String> = (0..cfg.num_countries)
        .map(|c| format!("country-{c}"))
        .collect();
    labels.push("undeclared".into());
    let opts = ExportOptions {
        labels,
        top_k: 15,
        ..Default::default()
    };
    println!("\n{}", top_edges_report(&avg, &opts, 10));
    println!("--- DOT (paste into graphviz) ---\n{}", to_dot(&avg, &opts));
}
