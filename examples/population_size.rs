//! Estimating the population size N from sample collisions (§4.3).
//!
//! ```sh
//! cargo run --release --example population_size
//! ```
//!
//! When the operator does not publish N, the "reversed coupon collector"
//! (Katzir et al., the paper's [33]) recovers it from repeated nodes in a
//! with-replacement sample — under both uniform and degree-weighted
//! designs. Absolute category sizes then follow; without N, all sizes and
//! weights are still estimable up to a constant.

use cgte::estimators::population::{
    collision_pairs, population_size_uniform, population_size_weighted,
};
use cgte::graph::generators::{planted_partition, PlantedConfig};
use cgte::sampling::{NodeSampler, RandomWalk, UniformIndependence};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(33);
    let pg = planted_partition(&PlantedConfig::scaled(10, 12, 0.5), &mut rng)
        .expect("feasible configuration");
    let n_true = pg.graph.num_nodes();
    println!("true N = {n_true}\n");

    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12}",
        "|S|", "UIS coll.", "UIS N̂", "RW coll.", "RW N̂"
    );
    for s in [500usize, 1000, 2000, 4000, 8000] {
        let uis_nodes = UniformIndependence.sample(&pg.graph, s, &mut rng);
        let uis_est = population_size_uniform(&uis_nodes);
        let rw = RandomWalk::new().burn_in(500).thinning(3);
        let rw_nodes = rw.sample(&pg.graph, s, &mut rng);
        let degrees: Vec<u32> = rw_nodes
            .iter()
            .map(|&v| pg.graph.degree(v) as u32)
            .collect();
        let rw_est = population_size_weighted(&rw_nodes, &degrees);
        println!(
            "{s:>8} {:>12} {:>12} {:>12} {:>12}",
            collision_pairs(&uis_nodes),
            uis_est.map_or("-".into(), |x| format!("{x:.0}")),
            collision_pairs(&rw_nodes),
            rw_est.map_or("-".into(), |x| format!("{x:.0}")),
        );
    }
    println!("\nBoth estimators converge to N = {n_true}; the RW variant corrects");
    println!("for the degree-proportional revisit bias of crawls.");
}
