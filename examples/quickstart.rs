//! Quickstart: estimate a category graph from a random-walk sample.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Generates the paper's synthetic graph (scaled down), crawls it with a
//! simple random walk, and estimates every category size and inter-category
//! edge weight from the crawl — then compares against the exact values,
//! which are computable here because the graph is fully known.

use cgte::estimators::{CategoryGraphEstimator, Design};
use cgte::graph::generators::{planted_partition, PlantedConfig};
use cgte::graph::CategoryGraph;
use cgte::sampling::{NodeSampler, RandomWalk, StarSample};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // 1. A graph whose nodes belong to 6 categories of very different
    //    sizes (the paper's §6.2.1 model), with moderate community
    //    structure (alpha = 0.5).
    let config = PlantedConfig {
        category_sizes: vec![100, 200, 400, 800, 1600, 3200],
        k: 10,
        alpha: 0.5,
    };
    let pg = planted_partition(&config, &mut rng).expect("feasible configuration");
    let n = pg.graph.num_nodes();
    println!(
        "graph: {} nodes, {} edges, {} categories",
        n,
        pg.graph.num_edges(),
        pg.partition.num_categories()
    );

    // 2. Crawl it: a simple random walk visits ~5% of the graph. The walk
    //    oversamples high-degree nodes; its stationary weight is deg(v).
    let rw = RandomWalk::new().burn_in(500);
    let nodes = rw.sample(&pg.graph, n / 10, &mut rng);

    // 3. Observe the sample in the star scenario: the crawler sees each
    //    sampled node's category, degree, and its neighbors' categories.
    let star = StarSample::observe_sampler(&pg.graph, &pg.partition, &nodes, &rw);

    // 4. Estimate the full category graph, correcting for the walk's bias.
    let est = CategoryGraphEstimator::new(Design::Weighted).estimate_star(&star, n as f64);

    // 5. Compare to the exact category graph.
    let exact = CategoryGraph::exact(&pg.graph, &pg.partition);
    println!(
        "\n{:>4} {:>12} {:>12} {:>8}",
        "cat", "true |A|", "est |A|", "err%"
    );
    for c in 0..exact.num_categories() as u32 {
        let t = exact.size(c);
        let e = est.size(c);
        println!(
            "{c:>4} {t:>12.0} {e:>12.1} {:>7.1}%",
            100.0 * (e - t).abs() / t
        );
    }

    let mut pairs: Vec<_> = exact.edges_by_weight().into_iter().take(5).collect();
    pairs.sort_by_key(|a| (a.a, a.b));
    println!(
        "\n{:>9} {:>12} {:>12} {:>8}",
        "edge", "true w", "est w", "err%"
    );
    for e in pairs {
        let t = e.weight;
        let w = est.weight(e.a, e.b);
        println!(
            "{:>4}-{:<4} {t:>12.3e} {w:>12.3e} {:>7.1}%",
            e.a,
            e.b,
            100.0 * (w - t).abs() / t
        );
    }
    println!(
        "\nSample was {} nodes ({}% of the graph).",
        nodes.len(),
        100 * nodes.len() / n
    );
}
