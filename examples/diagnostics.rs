//! Crawl diagnostics and the BFS cautionary tale (§5.4, §8).
//!
//! ```sh
//! cargo run --release --example diagnostics
//! ```
//!
//! 1. Convergence diagnostics for a random walk: lag autocorrelation of the
//!    degree trace, the decorrelation lag (a principled thinning choice),
//!    and the Geweke z-score.
//! 2. Why BFS sampling is not a probability design: its category size
//!    "estimates" stay biased no matter how large the sample, while the
//!    corrected RW estimates converge (§8's warning, demonstrated).

use cgte::estimators::category_size::induced_size;
use cgte::graph::generators::{planted_partition, PlantedConfig};
use cgte::sampling::convergence::{autocorrelation, decorrelation_lag, degree_trace, geweke_z};
use cgte::sampling::{BreadthFirst, InducedSample, NodeSampler, RandomWalk};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(58);
    // A graph with a small, tightly-knit category 0: BFS started anywhere
    // tends to either flood it or miss it.
    let cfg = PlantedConfig {
        category_sizes: vec![150, 600, 1200],
        k: 8,
        alpha: 0.2,
    };
    let pg = planted_partition(&cfg, &mut rng).expect("feasible configuration");
    let n = pg.graph.num_nodes();

    // --- Part 1: walk diagnostics -------------------------------------
    let rw = RandomWalk::new();
    let walk = rw.sample(&pg.graph, 30_000, &mut rng);
    let trace = degree_trace(&pg.graph, &walk);
    println!(
        "random walk diagnostics (degree trace, {} steps):",
        trace.len()
    );
    for lag in [1usize, 2, 5, 10, 20] {
        println!(
            "  lag-{lag:<2} autocorrelation: {:+.4}",
            autocorrelation(&trace, lag).unwrap()
        );
    }
    match decorrelation_lag(&trace, 0.05, 200) {
        Some(t) => println!("  decorrelation lag (|r| < 0.05): T = {t}  → thinning choice"),
        None => println!("  trace still correlated at lag 200"),
    }
    println!(
        "  Geweke z (first 10% vs last 50%): {:+.2}  (|z| ≲ 2 ⇒ no drift detected)",
        geweke_z(&trace, 0.1, 0.5).unwrap()
    );

    // --- Part 2: BFS degree bias does not vanish with sample size ------
    // BFS reaches hubs almost immediately, so the raw sample mean degree
    // overshoots; a RW sample is equally biased *but* its bias is exactly
    // deg(v)-proportional, so the Eq. (14) correction removes it. BFS has
    // no such correction.
    use cgte::datasets::{standin, StandinKind};
    use cgte::estimators::category_size::mean_degree;
    use cgte::graph::Partition;
    let skewed = standin(StandinKind::Epinions, 60, &mut rng);
    let trivial = Partition::trivial(skewed.num_nodes());
    println!(
        "\nmean degree k_V on a degree-skewed graph (truth = {:.2}):",
        skewed.mean_degree()
    );
    println!("{:>8} {:>12} {:>14}", "|S|", "BFS naive", "RW corrected");
    for s in [50usize, 200, 800] {
        let mut bfs_est = 0.0;
        let mut rw_est = 0.0;
        let reps = 30;
        for _ in 0..reps {
            let bfs_nodes = BreadthFirst::new().sample(&skewed, s, &mut rng);
            let bfs_sample = InducedSample::observe(&skewed, &trivial, &bfs_nodes);
            bfs_est += mean_degree(&bfs_sample).unwrap() / reps as f64;
            let rw = RandomWalk::new().burn_in(300);
            let rw_nodes = rw.sample(&skewed, s, &mut rng);
            let rw_sample = InducedSample::observe_sampler(&skewed, &trivial, &rw_nodes, &rw);
            rw_est += mean_degree(&rw_sample).unwrap() / reps as f64;
        }
        println!("{s:>8} {bfs_est:>12.2} {rw_est:>14.2}");
    }
    // Category sizes still work *on average* under BFS here (uniform seed),
    // but each single BFS floods one community — the per-sample spread is
    // the failure mode:
    let reps = 40;
    let mut bfs_sq = 0.0;
    let mut rw_sq = 0.0;
    let truth = 150.0;
    for _ in 0..reps {
        let bfs_nodes = BreadthFirst::new().sample(&pg.graph, 300, &mut rng);
        let b = InducedSample::observe(&pg.graph, &pg.partition, &bfs_nodes);
        bfs_sq += (induced_size(&b, 0, n as f64).unwrap() - truth).powi(2) / reps as f64;
        let rw = RandomWalk::new().burn_in(300);
        let rw_nodes = rw.sample(&pg.graph, 300, &mut rng);
        let r = InducedSample::observe_sampler(&pg.graph, &pg.partition, &rw_nodes, &rw);
        rw_sq += (induced_size(&r, 0, n as f64).unwrap() - truth).powi(2) / reps as f64;
    }
    println!(
        "\ncategory-0 size at |S|=300: NRMSE(BFS) = {:.3} vs NRMSE(RW corrected) = {:.3}",
        bfs_sq.sqrt() / truth,
        rw_sq.sqrt() / truth
    );
    println!("BFS floods whichever community the seed lands in — huge per-sample");
    println!("variance and an uncorrectable degree bias (§8's case for probability");
    println!("samples).");
}
