//! Compare sampling techniques head-to-head, reproducing the paper's
//! ordering UIS > S-WRW > RW > MHRW (§6.3.3, §7.2) on one graph.
//!
//! ```sh
//! cargo run --release --example crawl_comparison
//! ```

use cgte::estimators::Design;
use cgte::eval::{run_experiment, EstimatorKind, ExperimentConfig, Target};
use cgte::graph::generators::{planted_partition, PlantedConfig};
use cgte::graph::CategoryGraph;
use cgte::sampling::{AnySampler, MetropolisHastingsWalk, RandomWalk, Swrw, UniformIndependence};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let pg = planted_partition(&PlantedConfig::scaled(20, 10, 0.5), &mut rng)
        .expect("feasible configuration");
    let exact = CategoryGraph::exact(&pg.graph, &pg.partition);
    let ncat = pg.partition.num_categories() as u32;
    let e_high = exact.weight_quantile_edge(0.75).expect("has edges");
    let targets = [Target::Size(ncat - 1), Target::Weight(e_high.a, e_high.b)];
    let sizes = vec![200, 1000, 4000];
    println!(
        "graph: {} nodes; targets: |C{}| and w({},{}); 30 replications\n",
        pg.graph.num_nodes(),
        ncat - 1,
        e_high.a,
        e_high.b
    );

    let samplers = [
        AnySampler::Uis(UniformIndependence),
        AnySampler::Swrw(
            Swrw::equal_category_target(&pg.graph, &pg.partition)
                .expect("has volume")
                .burn_in(500),
        ),
        AnySampler::Rw(RandomWalk::new().burn_in(500)),
        AnySampler::Mhrw(MetropolisHastingsWalk::new().burn_in(500)),
    ];
    println!(
        "{:<7} {:>6}  {:>11} {:>11}  {:>13} {:>13}",
        "design", "|S|", "size/induced", "size/star", "weight/induced", "weight/star"
    );
    for sampler in &samplers {
        let design = match sampler {
            AnySampler::Uis(_) | AnySampler::Mhrw(_) => Design::Uniform,
            _ => Design::Weighted,
        };
        let cfg = ExperimentConfig::new(sizes.clone(), 30)
            .seed(99)
            .design(design);
        let res = run_experiment(&pg.graph, &pg.partition, sampler, &targets, &cfg);
        for (i, &s) in sizes.iter().enumerate() {
            println!(
                "{:<7} {:>6}  {:>11.4} {:>11.4}  {:>13.4} {:>13.4}",
                sampler.name(),
                s,
                res.nrmse(EstimatorKind::InducedSize, targets[0]).unwrap()[i],
                res.nrmse(EstimatorKind::StarSize, targets[0]).unwrap()[i],
                res.nrmse(EstimatorKind::InducedWeight, targets[1]).unwrap()[i],
                res.nrmse(EstimatorKind::StarWeight, targets[1]).unwrap()[i],
            );
        }
        println!();
    }
    println!("Expected: UIS rows smallest; star columns beat induced for weights at");
    println!("every design (the paper's 5-10x sample-efficiency gap). Note S-WRW is");
    println!("tuned for *small*-category measurement — on targets involving large");
    println!("categories its deliberate undersampling of them costs accuracy, which");
    println!("is exactly the stratification tradeoff of §6.3.3 / ablation A3.");
}
